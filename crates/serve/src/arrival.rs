//! Open-loop load generation: deterministic seeded arrival processes.
//!
//! An *open-loop* generator emits queries at times drawn from an arrival
//! process regardless of whether the system keeps up — the regime that
//! exposes queueing delay and tail latency (a closed loop self-throttles
//! and hides both). Every process is seeded: the same seed and tenant
//! list produce the exact same arrival schedule, which is the first link
//! in the serving layer's bit-identical-report determinism chain.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// When queries arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `qps` queries per second: exponential
    /// inter-arrival gaps (a Poisson process), the standard open-loop
    /// serving assumption.
    Poisson {
        /// Mean offered load in queries per second.
        qps: f64,
    },
    /// Periodic bursts: `burst_qps` for the first `burst_frac` of every
    /// `period_cycles` window, `base_qps` for the rest. Models diurnal
    /// spikes and batch-job interference compressed to simulation scale.
    Bursty {
        /// Off-burst offered load in queries per second.
        base_qps: f64,
        /// In-burst offered load in queries per second.
        burst_qps: f64,
        /// Length of one burst period in memory cycles.
        period_cycles: u64,
        /// Fraction of the period spent bursting, in `(0, 1)`.
        burst_frac: f64,
    },
    /// Replay explicit arrival cycles (e.g. from a production trace).
    Trace {
        /// Arrival times in memory cycles, non-decreasing.
        cycles: Vec<u64>,
    },
}

impl ArrivalProcess {
    /// Mean offered load in queries per second (for `Trace`, computed
    /// over the trace span at `mem_clock_mhz`).
    pub fn nominal_qps(&self, mem_clock_mhz: u64) -> f64 {
        match self {
            ArrivalProcess::Poisson { qps } => *qps,
            ArrivalProcess::Bursty {
                base_qps,
                burst_qps,
                burst_frac,
                ..
            } => burst_qps * burst_frac + base_qps * (1.0 - burst_frac),
            ArrivalProcess::Trace { cycles } => {
                let span = cycles.last().copied().unwrap_or(0).max(1);
                cycles.len() as f64 * mem_clock_mhz as f64 * 1e6 / span as f64
            }
        }
    }

    /// The same process with its offered load scaled by `factor`
    /// (used by the QPS sweep). Trace arrivals compress in time.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn scaled(&self, factor: f64) -> ArrivalProcess {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor");
        match self {
            ArrivalProcess::Poisson { qps } => ArrivalProcess::Poisson { qps: qps * factor },
            ArrivalProcess::Bursty {
                base_qps,
                burst_qps,
                period_cycles,
                burst_frac,
            } => ArrivalProcess::Bursty {
                base_qps: base_qps * factor,
                burst_qps: burst_qps * factor,
                period_cycles: *period_cycles,
                burst_frac: *burst_frac,
            },
            ArrivalProcess::Trace { cycles } => ArrivalProcess::Trace {
                cycles: cycles
                    .iter()
                    .map(|&c| ((c as f64 / factor).round() as u64).max(1))
                    .collect(),
            },
        }
    }
}

/// One tenant's query stream and service objective.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (also keys the per-tenant report).
    pub name: String,
    /// Weighted-fair-queueing weight (relative service share).
    pub weight: u64,
    /// The tenant's arrival process.
    pub process: ArrivalProcess,
    /// Latency SLO in memory cycles: a query attains its SLO when its
    /// total (queue + execute) latency is at or under this bound.
    pub slo_cycles: u64,
    /// How many queries this tenant offers over the run (ignored for
    /// `Trace`, which offers one query per trace entry).
    pub queries: usize,
}

/// One generated arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in memory cycles.
    pub cycle: u64,
    /// Index into the tenant list.
    pub tenant: usize,
    /// 0-based arrival sequence number within the tenant.
    pub seq: u64,
    /// Index of the query (into the workload's query/trace lists).
    pub query: usize,
}

/// Draw an exponential inter-arrival gap (in cycles) for `rate` arrivals
/// per cycle, using inverse-transform sampling. Clamped to ≥ 1 cycle.
fn exp_gap(rng: &mut SmallRng, rate: f64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let gap = -(1.0 - u).ln() / rate;
    (gap.round() as u64).max(1)
}

/// Queries per simulated cycle for `qps` at `mem_clock_mhz`.
fn per_cycle_rate(qps: f64, mem_clock_mhz: u64) -> f64 {
    assert!(
        qps.is_finite() && qps > 0.0,
        "offered load must be positive"
    );
    qps / (mem_clock_mhz as f64 * 1e6)
}

/// Generate the merged multi-tenant arrival schedule.
///
/// Each tenant draws from its own sub-seeded generator, so adding or
/// reordering one tenant never perturbs another's schedule. The merged
/// list is sorted by `(cycle, tenant, seq)` — a total order, so the
/// result is unique.
///
/// # Panics
///
/// Panics on an empty tenant list, a zero weight, a non-positive rate,
/// or `n_queries == 0`.
pub fn generate_arrivals(
    tenants: &[TenantSpec],
    n_queries: usize,
    seed: u64,
    mem_clock_mhz: u64,
) -> Vec<Arrival> {
    assert!(!tenants.is_empty(), "need at least one tenant");
    assert!(n_queries > 0, "need at least one distinct query");
    let mut all = Vec::new();
    for (t, spec) in tenants.iter().enumerate() {
        assert!(spec.weight > 0, "tenant {} has zero weight", spec.name);
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let emit = |cycle: u64, seq: u64, rng: &mut SmallRng| Arrival {
            cycle,
            tenant: t,
            seq,
            query: rng.gen_range(0..n_queries),
        };
        match &spec.process {
            ArrivalProcess::Poisson { qps } => {
                let rate = per_cycle_rate(*qps, mem_clock_mhz);
                let mut now = 0u64;
                for seq in 0..spec.queries as u64 {
                    now += exp_gap(&mut rng, rate);
                    all.push(emit(now, seq, &mut rng));
                }
            }
            ArrivalProcess::Bursty {
                base_qps,
                burst_qps,
                period_cycles,
                burst_frac,
            } => {
                assert!(*period_cycles > 0, "zero burst period");
                assert!(
                    (0.0..=1.0).contains(burst_frac),
                    "burst fraction out of range"
                );
                let burst_len = (*period_cycles as f64 * burst_frac) as u64;
                let mut now = 0u64;
                for seq in 0..spec.queries as u64 {
                    let in_burst = now % period_cycles < burst_len;
                    let qps = if in_burst { *burst_qps } else { *base_qps };
                    now += exp_gap(&mut rng, per_cycle_rate(qps, mem_clock_mhz));
                    all.push(emit(now, seq, &mut rng));
                }
            }
            ArrivalProcess::Trace { cycles } => {
                let mut prev = 0u64;
                for (seq, &c) in cycles.iter().enumerate() {
                    assert!(c >= prev, "trace arrivals must be non-decreasing");
                    prev = c;
                    all.push(emit(c, seq as u64, &mut rng));
                }
            }
        }
    }
    all.sort_by_key(|a| (a.cycle, a.tenant, a.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_tenant(qps: f64, queries: usize) -> TenantSpec {
        TenantSpec {
            name: "t".into(),
            weight: 1,
            process: ArrivalProcess::Poisson { qps },
            slo_cycles: 1_000_000,
            queries,
        }
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let t = vec![poisson_tenant(50_000.0, 200)];
        let a = generate_arrivals(&t, 10, 42, 2400);
        let b = generate_arrivals(&t, 10, 42, 2400);
        assert_eq!(a, b);
        let c = generate_arrivals(&t, 10, 43, 2400);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let t = vec![poisson_tenant(100_000.0, 2_000)];
        let a = generate_arrivals(&t, 10, 7, 2400);
        let span = a.last().expect("non-empty arrival schedule").cycle as f64;
        let achieved = 2_000.0 * 2400.0 * 1e6 / span;
        assert!(
            (achieved / 100_000.0 - 1.0).abs() < 0.15,
            "achieved {achieved:.0} qps"
        );
    }

    #[test]
    fn arrivals_sorted_and_queries_in_range() {
        let t = vec![
            poisson_tenant(80_000.0, 300),
            TenantSpec {
                name: "b".into(),
                weight: 2,
                process: ArrivalProcess::Bursty {
                    base_qps: 20_000.0,
                    burst_qps: 200_000.0,
                    period_cycles: 1_000_000,
                    burst_frac: 0.2,
                },
                slo_cycles: 1_000_000,
                queries: 300,
            },
        ];
        let a = generate_arrivals(&t, 7, 1, 2400);
        assert_eq!(a.len(), 600);
        for w in a.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
        assert!(a.iter().all(|x| x.query < 7));
        assert!(a.iter().any(|x| x.tenant == 0) && a.iter().any(|x| x.tenant == 1));
    }

    #[test]
    fn trace_process_replays_exactly() {
        let t = vec![TenantSpec {
            name: "tr".into(),
            weight: 1,
            process: ArrivalProcess::Trace {
                cycles: vec![10, 10, 500, 900],
            },
            slo_cycles: 1_000,
            queries: 999, // ignored
        }];
        let a = generate_arrivals(&t, 3, 5, 2400);
        assert_eq!(
            a.iter().map(|x| x.cycle).collect::<Vec<_>>(),
            [10, 10, 500, 900]
        );
    }

    #[test]
    fn scaling_halves_gaps() {
        let p = ArrivalProcess::Trace {
            cycles: vec![100, 200, 400],
        };
        let s = p.scaled(2.0);
        assert_eq!(
            s,
            ArrivalProcess::Trace {
                cycles: vec![50, 100, 200]
            }
        );
        let q = ArrivalProcess::Poisson { qps: 1000.0 }.scaled(0.5);
        assert!(matches!(q, ArrivalProcess::Poisson { qps } if (qps - 500.0).abs() < 1e-9));
    }

    #[test]
    fn nominal_qps_mixes_burst() {
        let p = ArrivalProcess::Bursty {
            base_qps: 100.0,
            burst_qps: 1100.0,
            period_cycles: 100,
            burst_frac: 0.1,
        };
        assert!((p.nominal_qps(2400) - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let t = vec![poisson_tenant(0.0, 5)];
        generate_arrivals(&t, 3, 1, 2400);
    }
}
