//! Online serving layer for the ANSMET simulator.
//!
//! The offline experiments (`ansmet-sim`) replay a fixed query list as
//! fast as the simulated hardware allows — they measure *latency* and
//! *saturated throughput*, but say nothing about serving behavior under
//! real traffic: arrival bursts, queueing, batching policy, overload, or
//! the p99 a deployment could promise. This crate adds that missing
//! regime on top of the same cycle-level machinery:
//!
//! * [`arrival`] — open-loop load generation: seeded Poisson, bursty,
//!   and trace-driven arrival processes over multi-tenant query streams.
//! * [`engine`] — the serving loop: admission control (queue-depth
//!   backpressure, per-query deadlines, load shedding), weighted-fair
//!   per-tenant queueing, and a dynamic batch former (max batch size /
//!   max linger) feeding NDP wave batches through
//!   [`ansmet_sim::WaveContext`].
//! * [`histogram`] — log-bucketed HDR-style latency histograms with
//!   bounded relative error and exact integer bucket math.
//! * [`report`] — p50/p95/p99/p99.9 for queue/execute/total latency,
//!   achieved QPS, shed rate, and SLO attainment, as text and
//!   deterministic JSON (`BENCH_serving.json`).
//! * [`sweep`] — QPS sweep finding the max sustainable throughput at a
//!   p99 target.
//! * [`resilience`] — fleet-level resilience: per-rank-group circuit
//!   breakers fed by EWMA health tracking, hedged offloads with a
//!   histogram-derived hedge delay, brownout admission control, and
//!   scripted storm evaluation (SLO before/during/after, MTTR).
//! * [`experiment`] — the `serve` and `resilience` experiment drivers
//!   for the bench binary.
//!
//! Fault integration: a [`FaultProfile`](engine::FaultProfile) routes
//! every comparison's offload through the `ansmet-faults` injector and
//! charges the host's retry/backoff/fallback recovery as extra cycles on
//! the affected queries — degraded-mode recovery becomes *measurable
//! tail inflation* while the returned neighbors stay bit-identical
//! (the recovery path is lossless, see `ansmet_sim::degraded`).
//!
//! Determinism contract: seeded arrivals, integer WFQ virtual time,
//! fresh device state per batch, and integer histograms make the whole
//! report a pure function of `(workload, config, serve config)` — the
//! same seed produces a bit-identical `BENCH_serving.json` on every run
//! and at every host thread count.
//!
//! # Example
//!
//! ```no_run
//! use ansmet_serve::{run_serve, ServeConfig};
//! use ansmet_sim::{SystemConfig, Workload};
//! use ansmet_vecdata::SynthSpec;
//!
//! let wl = Workload::prepare(&SynthSpec::sift().scaled(2000, 4), 10, None);
//! let cfg = SystemConfig::default();
//! let serve = ServeConfig::open_loop(42, 50_000.0, 200, 2_000_000);
//! let report = run_serve(&wl, &cfg, &serve);
//! println!("{}", report.render("serve"));
//! assert!(report.slo_attainment() > 0.0);
//! ```

pub mod arrival;
pub mod engine;
pub mod experiment;
pub mod histogram;
pub mod report;
pub mod resilience;
pub mod sweep;
pub mod wfq;

pub use arrival::{generate_arrivals, Arrival, ArrivalProcess, TenantSpec};
pub use engine::{
    run_serve, run_serve_with_sink, AdmissionConfig, BatchPolicy, FaultProfile, MaintenancePlan,
    ServeConfig, FALLBACK_CYCLES_PER_LINE, POLL_MISS_PENALTY_CYCLES, TIMEOUT_PENALTY_CYCLES,
};
pub use experiment::{ops_serve_config, resilience_experiment, serve_experiment};
pub use histogram::LatencyHistogram;
pub use report::{cycles_to_ms, PercentileSummary, ServeReport, TenantReport};
pub use resilience::{
    BrownoutConfig, HedgeConfig, ReplicationMode, ResilienceConfig, ResilienceReport, StormOutcome,
    StormProfile, WindowStats,
};
pub use sweep::{sweep_qps, QpsSweep, SweepPoint};
pub use wfq::{WfqState, WFQ_SCALE};
