//! The online serving engine: admission control, weighted-fair queueing,
//! dynamic batch formation, and simulated execution on the NDP device.
//!
//! The engine advances a single simulated clock (memory cycles). Queries
//! arrive open-loop from [`generate_arrivals`](crate::arrival::generate_arrivals);
//! an admission controller sheds on queue-depth backpressure and expired
//! deadlines; a weighted-fair queue picks which admitted queries join the
//! next batch; a dynamic batch former dispatches when the batch fills,
//! the oldest query has lingered long enough, or no more arrivals are
//! coming; and each dispatched batch executes through the wave model
//! ([`WaveContext`]) of the cycle-level simulator.
//!
//! Determinism: the loop is strictly event-ordered, every tie is broken
//! by `(tag, tenant, seq)`, batches execute on fresh device state, and
//! the recorded latencies feed integer histograms — so one seed and one
//! config produce one bit-identical report, independent of host thread
//! count or run-to-run jitter (enforced by `tests/serving.rs`).

use std::collections::VecDeque;

use ansmet_faults::{ComputeFault, FaultInjector, FaultKind, FaultPlan, FaultRates, StormPlan};
use ansmet_host::RetryPolicy;
use ansmet_index::HopKind;
use ansmet_ndp::{Partitioner, ResultPayload};
use ansmet_obs::{EventKind, NoopSink, Phase, TraceSink};
use ansmet_sim::{Design, EventWheel, RecoveryReport, SystemConfig, WaveContext, Workload};

use crate::arrival::{generate_arrivals, Arrival, TenantSpec};
use crate::histogram::LatencyHistogram;
use crate::report::{ServeReport, TenantReport};
use crate::resilience::{FleetState, ResilienceConfig, StormProfile, WindowStats};

/// Dynamic batch-formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most queries one batch may carry.
    pub max_batch: usize,
    /// Longest the oldest queued query may wait for co-batchees, in
    /// memory cycles, before the batch dispatches part-full.
    pub max_linger_cycles: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_linger_cycles: 4_000,
        }
    }
}

/// Admission-control policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queue-depth backpressure: an arrival finding this many queries
    /// already queued is shed immediately.
    pub max_queue_depth: usize,
    /// Optional per-query deadline in cycles: a query still queued this
    /// long after arrival is shed at dispatch time instead of executed
    /// (it could no longer meet any SLO, so executing it wastes device
    /// time that fresher queries need).
    pub deadline_cycles: Option<u64>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queue_depth: 256,
            deadline_cycles: None,
        }
    }
}

/// Fault-injection profile for a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Per-operation fault probabilities.
    pub rates: FaultRates,
    /// Seed for the generated [`FaultPlan`].
    pub seed: u64,
    /// Host-side recovery policy.
    pub retry: RetryPolicy,
}

/// Full configuration of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for arrival generation (and query selection).
    pub seed: u64,
    /// The hardware design serving the traffic (NDP designs only).
    pub design: Design,
    /// The tenants sharing the device.
    pub tenants: Vec<TenantSpec>,
    /// Batch-formation policy.
    pub batch: BatchPolicy,
    /// Admission-control policy.
    pub admission: AdmissionConfig,
    /// Optional fault injection (recovery shows up as tail latency).
    pub faults: Option<FaultProfile>,
    /// Optional scripted sustained-degradation storm (rank groups sick
    /// over serving-clock windows).
    pub storm: Option<StormProfile>,
    /// Optional fleet-resilience layer (health tracking, circuit
    /// breakers, hedged offloads, brownout admission).
    pub resilience: Option<ResilienceConfig>,
    /// Optional scheduled maintenance: periodic compaction-style pauses
    /// that hold the device (models the freshness tier's epoch work on
    /// the serving path). `None` leaves the engine bit-identical to the
    /// pre-maintenance behavior.
    pub maintenance: Option<MaintenancePlan>,
}

/// Periodic device-pause schedule (compaction / re-validation work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenancePlan {
    /// Cycles between pause opportunities. The pause fires at the first
    /// scheduling decision at or after each due cycle.
    pub interval_cycles: u64,
    /// Cycles the device is held per pause.
    pub pause_cycles: u64,
}

impl ServeConfig {
    /// A single-tenant Poisson workload: `queries` arrivals at `qps`
    /// with SLO `slo_cycles`, served by `NdpEtOpt`.
    pub fn open_loop(seed: u64, qps: f64, queries: usize, slo_cycles: u64) -> Self {
        ServeConfig {
            seed,
            design: Design::NdpEtOpt,
            tenants: vec![TenantSpec {
                name: "default".into(),
                weight: 1,
                process: crate::arrival::ArrivalProcess::Poisson { qps },
                slo_cycles,
                queries,
            }],
            batch: BatchPolicy::default(),
            admission: AdmissionConfig::default(),
            faults: None,
            storm: None,
            resilience: None,
            maintenance: None,
        }
    }

    /// The same config with every tenant's offered load scaled so the
    /// aggregate nominal rate becomes `total_qps` (ratios preserved).
    ///
    /// # Panics
    ///
    /// Panics if the current aggregate nominal rate is zero.
    pub fn with_total_qps(&self, total_qps: f64, mem_clock_mhz: u64) -> Self {
        let current: f64 = self
            .tenants
            .iter()
            .map(|t| t.process.nominal_qps(mem_clock_mhz))
            .sum();
        assert!(current > 0.0, "aggregate offered load is zero");
        let factor = total_qps / current;
        let mut out = self.clone();
        for t in &mut out.tenants {
            t.process = t.process.scaled(factor);
        }
        out
    }

    /// The same config with fault injection enabled.
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// The same config with a scripted storm enabled.
    pub fn with_storm(mut self, storm: StormProfile) -> Self {
        self.storm = Some(storm);
        self
    }

    /// The same config with the fleet-resilience layer enabled.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// The same config with scheduled maintenance pauses enabled.
    pub fn with_maintenance(mut self, plan: MaintenancePlan) -> Self {
        self.maintenance = Some(plan);
        self
    }
}

/// Serve-clock timer tokens (agents on the shared [`EventWheel`]).
const WAKE_ARRIVAL: u32 = 0;
const WAKE_DEVICE_FREE: u32 = 1;
const WAKE_LINGER: u32 = 2;

/// Cycles one abandoned poll window costs when a batch times out
/// (mirrors the degraded-mode runner's deadline scale). Shared with the
/// cluster plane's shard-failover cost model.
pub const TIMEOUT_PENALTY_CYCLES: u64 = 4_096;
/// One conventional poll period (100 ns at DDR5-4800), charged per
/// transient poll miss.
pub const POLL_MISS_PENALTY_CYCLES: u64 = 240;
/// Cycles per 64 B line for the host's exact-fallback recompute
/// (matches `ansmet_sim::degraded`).
pub const FALLBACK_CYCLES_PER_LINE: u64 = 60;

/// A query waiting in its tenant's queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    arrival: Arrival,
    /// WFQ finish tag; dispatch order is ascending `(tag, tenant, seq)`.
    tag: u64,
}

/// Per-tenant running tallies.
#[derive(Debug, Default, Clone)]
struct TenantTally {
    offered: u64,
    shed_queue: u64,
    shed_deadline: u64,
    completed: u64,
    slo_attained: u64,
    total: LatencyHistogram,
}

/// FNV-1a over the served queries' neighbor ids, in arrival order.
///
/// Faults must never change *what* a query returns, only *when* — so a
/// faulted run over the same served set hashes to the same fingerprint.
fn results_fingerprint(served: &[Option<usize>], workload: &Workload) -> u64 {
    let mut h = ansmet_obs::Fnv64::new();
    for q in served.iter().flatten() {
        h.write_u64(*q as u64 + 1);
        for &id in &workload.results[*q] {
            h.write_u64(id as u64);
        }
    }
    h.finish()
}

/// Recovery-penalty cycles for one query's comparisons under injected
/// faults, charged on top of its fault-free execution time.
///
/// The model mirrors the degraded-mode runner's protocol per offload:
/// drop/hang ⇒ an abandoned poll window; stall ⇒ the stall itself;
/// corrupt/lost payload ⇒ a CRC rejection; each failure retries under
/// the [`RetryPolicy`]'s backoff until the host computes the distance
/// itself. Counters land in the shared [`RecoveryReport`].
#[allow(clippy::too_many_arguments)]
fn recovery_penalty<S: TraceSink>(
    injector: &mut FaultInjector,
    retry: &RetryPolicy,
    workload: &Workload,
    query: usize,
    partitioner: &Partitioner,
    rec: &mut RecoveryReport,
    sink: &mut S,
    at: u64,
) -> u64 {
    let natural_lines = workload.data.vector_lines() as u64;
    let mut penalty = 0u64;
    for hop in &workload.traces[query].hops {
        if hop.kind == HopKind::Centroid {
            continue; // host-side arithmetic; no offload to fault
        }
        for e in &hop.evals {
            rec.comparisons += 1;
            let lead = partitioner.group_of(e.id) * partitioner.group_size();
            let mut attempt = 0u32;
            loop {
                rec.offloads += 1;
                let mut failed = false;
                if injector.drop_instruction(lead) {
                    failed = true;
                } else {
                    match injector.compute_fault(lead) {
                        ComputeFault::None => {}
                        ComputeFault::Stall(extra) => penalty += extra,
                        ComputeFault::Hang => failed = true,
                    }
                }
                if failed {
                    rec.timeouts += 1;
                    penalty += TIMEOUT_PENALTY_CYCLES;
                } else {
                    let mut p = ResultPayload::encode(&[0.0]);
                    match injector.poll_fault(lead, &mut p) {
                        Some(FaultKind::CorruptResult { .. }) | Some(FaultKind::LostResult) => {
                            rec.crc_rejections += 1;
                            sink.event(at + penalty, EventKind::CrcRejected { rank: lead as u32 });
                            failed = true;
                        }
                        Some(FaultKind::PollMiss) => {
                            rec.poll_misses += 1;
                            penalty += POLL_MISS_PENALTY_CYCLES;
                        }
                        _ => {}
                    }
                }
                if !failed {
                    break;
                }
                if retry.exhausted(attempt) {
                    rec.host_fallbacks += 1;
                    penalty += natural_lines * FALLBACK_CYCLES_PER_LINE;
                    sink.event(
                        at + penalty,
                        EventKind::HostFallback {
                            rank: lead as u32,
                            lines: natural_lines as u32,
                        },
                    );
                    break;
                }
                penalty += retry.backoff(attempt);
                rec.retries += 1;
                sink.event(
                    at + penalty,
                    EventKind::RecoveryRetry {
                        rank: lead as u32,
                        attempt,
                    },
                );
                attempt += 1;
            }
        }
    }
    penalty
}

/// Run one online serving simulation.
///
/// # Panics
///
/// Panics on an empty tenant list, a CPU design, a zero batch size, or
/// a workload with no queries.
pub fn run_serve(workload: &Workload, config: &SystemConfig, serve: &ServeConfig) -> ServeReport {
    run_serve_with_sink(workload, config, serve, &mut NoopSink)
}

/// [`run_serve`] with a [`TraceSink`] riding along.
///
/// Spans are stamped on the serving clock (absolute memory cycles):
/// each completed query contributes a queue span from arrival to
/// dispatch, an execute span for its wave retirement, and — under fault
/// injection — a recovery span covering its penalty. Point events mark
/// batch formation, sheds, and recovery retries/CRC rejections/host
/// fallbacks. The sink observes the run, never steers it: with
/// [`NoopSink`] the report is bit-identical to [`run_serve`].
///
/// # Panics
///
/// Panics on an empty tenant list, a CPU design, a zero batch size, or
/// a workload with no queries.
pub fn run_serve_with_sink<S: TraceSink>(
    workload: &Workload,
    config: &SystemConfig,
    serve: &ServeConfig,
    sink: &mut S,
) -> ServeReport {
    assert!(serve.batch.max_batch > 0, "zero batch size");
    assert!(!workload.queries.is_empty(), "empty workload");
    let mem_clock = config.dram.clock_mhz;
    let arrivals = generate_arrivals(
        &serve.tenants,
        workload.queries.len(),
        serve.seed,
        mem_clock,
    );
    let ctx = WaveContext::new(serve.design, workload, config);
    let partitioner = Partitioner::new(
        config.partition,
        config.ndp_units(),
        workload.data.dim(),
        workload.data.dtype().bytes(),
    );

    let make_injector = |f: &FaultProfile| {
        let evals: u64 = workload
            .traces
            .iter()
            .map(|t| t.total_evals() as u64)
            .sum::<u64>();
        // Upper-bound ops per rank: every arrival replays a trace, plus
        // retry re-offloads.
        let per_rank = (arrivals.len() as u64 * evals * 2)
            / (config.ndp_units() as u64).max(1)
            / (workload.traces.len() as u64).max(1)
            + 64;
        let plan = FaultPlan::random(f.seed, config.ndp_units(), per_rank, f.rates);
        FaultInjector::new(plan)
    };
    // The fleet path (storm and/or resilience layer) supersedes the
    // legacy per-query recovery model; configs with only `faults` keep
    // the original model bit-for-bit.
    let mut fleet = if serve.storm.is_some() || serve.resilience.is_some() {
        let retry = serve
            .storm
            .as_ref()
            .map(|s| s.retry)
            .or_else(|| serve.faults.as_ref().map(|f| f.retry))
            .unwrap_or_else(RetryPolicy::default_ndp);
        let plan = serve
            .storm
            .as_ref()
            .map(|s| s.plan.clone())
            .unwrap_or_else(StormPlan::none);
        Some(FleetState::new(
            workload,
            &partitioner,
            serve.faults.as_ref().map(make_injector),
            retry,
            plan,
            serve.resilience,
        ))
    } else {
        None
    };
    let mut fault_state = if fleet.is_some() {
        None
    } else {
        serve
            .faults
            .as_ref()
            .map(|f| (make_injector(f), f.retry, RecoveryReport::default()))
    };
    let storm_span = serve.storm.as_ref().and_then(|s| s.plan.span());
    let window_of = |cycle: u64| -> usize {
        match storm_span {
            Some((start, _)) if cycle < start => 0,
            Some((_, end)) if cycle < end => 1,
            _ => 2,
        }
    };
    let mut window_stats = [WindowStats::default(); 3];
    let mut window_hists = [
        LatencyHistogram::new(),
        LatencyHistogram::new(),
        LatencyHistogram::new(),
    ];
    let top_weight = serve.tenants.iter().map(|t| t.weight).max().unwrap_or(1);

    // Per-tenant FIFO queues; WFQ tags assigned at admission.
    let n_tenants = serve.tenants.len();
    let mut queues: Vec<VecDeque<Queued>> = vec![VecDeque::new(); n_tenants];
    let mut wfq = crate::wfq::WfqState::new(n_tenants);
    let mut queued_total = 0usize;
    let mut tallies: Vec<TenantTally> = vec![TenantTally::default(); n_tenants];

    let mut queue_hist = LatencyHistogram::new();
    let mut exec_hist = LatencyHistogram::new();
    let mut total_hist = LatencyHistogram::new();
    let mut served: Vec<Option<usize>> = vec![None; arrivals.len()];

    let mut ev = 0usize; // next un-admitted arrival
    let mut now = 0u64;
    let mut device_free = 0u64;
    let mut batches = 0u64;
    let mut batched_queries = 0u64;
    let mut makespan = 0u64;
    // All serve-clock timers (next arrival, device-free, batch linger)
    // register wakeups here; the loop advances by popping the earliest.
    // Exactly one timer is armed per idle decision, so the pop returns
    // the same cycle the pre-wheel code computed inline.
    let mut timers = EventWheel::new(0);
    let mut next_maintenance = serve.maintenance.map(|p| p.interval_cycles);
    let mut maintenance_epoch = 0u32;

    loop {
        // Brownout: detected capacity loss (open breakers) tightens
        // admission before this round. High-priority (top-weight)
        // tenants are shifted half as hard.
        let brownout = match &mut fleet {
            Some(fl) => fl.brownout_level(now, sink),
            None => 0,
        };
        let shift_of = |weight: u64| -> u32 {
            if weight >= top_weight {
                brownout / 2
            } else {
                brownout
            }
        };
        // Admit everything that has arrived by `now`.
        while ev < arrivals.len() && arrivals[ev].cycle <= now {
            let a = arrivals[ev];
            let tally = &mut tallies[a.tenant];
            tally.offered += 1;
            window_stats[window_of(a.cycle)].offered += 1;
            let depth_limit = (serve.admission.max_queue_depth
                >> shift_of(serve.tenants[a.tenant].weight))
            .max(1);
            if queued_total >= depth_limit {
                tally.shed_queue += 1;
                sink.event(a.cycle, EventKind::Shed { deadline: false });
                if brownout > 0 {
                    if let Some(fl) = &mut fleet {
                        fl.brownout_sheds += 1;
                    }
                }
            } else {
                let tag = wfq.admit_tag(a.tenant, serve.tenants[a.tenant].weight);
                queues[a.tenant].push_back(Queued { arrival: a, tag });
                queued_total += 1;
            }
            ev += 1;
        }
        if queued_total == 0 {
            if ev >= arrivals.len() {
                break;
            }
            timers.schedule(arrivals[ev].cycle.max(now), WAKE_ARRIVAL);
            now = timers.pop_next().expect("arrival timer armed").cycle;
            continue;
        }
        sink.sample(now, "serve.queue_depth", queued_total as u64);
        if device_free > now {
            // Queries arriving while the device is busy are admitted
            // retroactively at their own arrival cycle, so the wakeup
            // jumps straight to device-free.
            timers.schedule(device_free, WAKE_DEVICE_FREE);
            now = timers.pop_next().expect("device timer armed").cycle;
            continue;
        }
        // Scheduled maintenance holds the idle device before the next
        // batch forms (the pause fires at the first decision point at or
        // after its due cycle).
        if let (Some(plan), Some(due)) = (serve.maintenance, next_maintenance) {
            if now >= due {
                sink.event(
                    now,
                    EventKind::CompactionPause {
                        epoch: maintenance_epoch,
                        cycles: plan.pause_cycles.min(u32::MAX as u64) as u32,
                    },
                );
                maintenance_epoch += 1;
                device_free = now + plan.pause_cycles;
                // The next pause is due one interval after this one
                // *ends*, so serving always resumes between pauses even
                // when the pause is longer than the interval.
                next_maintenance = Some(device_free + plan.interval_cycles);
                continue;
            }
        }
        // Batch-formation decision.
        let oldest = queues
            .iter()
            .filter_map(|q| q.front())
            .map(|q| q.arrival.cycle)
            .min()
            .expect("non-empty queues");
        let ready = queued_total >= serve.batch.max_batch
            || ev >= arrivals.len()
            || now >= oldest.saturating_add(serve.batch.max_linger_cycles);
        if !ready {
            let wake = arrivals[ev]
                .cycle
                .min(oldest.saturating_add(serve.batch.max_linger_cycles));
            timers.schedule(wake.max(now + 1), WAKE_LINGER);
            now = timers.pop_next().expect("linger timer armed").cycle;
            continue;
        }

        // Pop up to max_batch queries in WFQ order, shedding expired
        // deadlines as they surface.
        let mut batch: Vec<Queued> = Vec::with_capacity(serve.batch.max_batch);
        while batch.len() < serve.batch.max_batch {
            let Some(t) = crate::wfq::WfqState::next_tenant(
                queues
                    .iter()
                    .enumerate()
                    .filter_map(|(t, q)| q.front().map(|h| (t, h.tag))),
            ) else {
                break;
            };
            let q = queues[t].pop_front().expect("non-empty");
            queued_total -= 1;
            wfq.advance_to(q.tag);
            if let Some(dl) = serve.admission.deadline_cycles {
                let dl = (dl >> shift_of(serve.tenants[t].weight)).max(1);
                if now > q.arrival.cycle.saturating_add(dl) {
                    tallies[t].shed_deadline += 1;
                    sink.event(now, EventKind::Shed { deadline: true });
                    if brownout > 0 {
                        if let Some(fl) = &mut fleet {
                            fl.brownout_sheds += 1;
                        }
                    }
                    continue;
                }
            }
            batch.push(q);
        }
        if batch.is_empty() {
            continue; // everything popped had expired
        }

        // Execute the batch on fresh device state.
        let ids: Vec<usize> = batch.iter().map(|q| q.arrival.query).collect();
        let exec = ctx.execute_with_sink(&ids, sink, now);
        batches += 1;
        batched_queries += batch.len() as u64;
        sink.event(
            now,
            EventKind::BatchFormed {
                size: batch.len() as u32,
            },
        );

        // Fault-recovery penalties stretch individual completions and
        // hold the device (the wave's close waits for recovery).
        let mut max_penalty = 0u64;
        let penalties: Vec<u64> = if let Some(fl) = &mut fleet {
            batch
                .iter()
                .map(|q| {
                    let p = fl.query_penalty(workload, q.arrival.query, &partitioner, now, sink);
                    max_penalty = max_penalty.max(p);
                    p
                })
                .collect()
        } else {
            match &mut fault_state {
                None => vec![0; batch.len()],
                Some((injector, retry, rec)) => batch
                    .iter()
                    .map(|q| {
                        let p = recovery_penalty(
                            injector,
                            retry,
                            workload,
                            q.arrival.query,
                            &partitioner,
                            rec,
                            sink,
                            now,
                        );
                        max_penalty = max_penalty.max(p);
                        p
                    })
                    .collect(),
            }
        };
        let added: u64 = penalties.iter().sum();
        if let Some(fl) = &mut fleet {
            fl.rec.added_latency_cycles += added;
        } else if let Some((_, _, rec)) = &mut fault_state {
            rec.added_latency_cycles += added;
        }

        for ((q, &retire), &penalty) in batch.iter().zip(&exec.per_query_cycles).zip(&penalties) {
            let completion = now + retire + penalty;
            let queue_cycles = now - q.arrival.cycle;
            let exec_cycles = retire + penalty;
            let total = completion - q.arrival.cycle;
            queue_hist.record(queue_cycles);
            exec_hist.record(exec_cycles);
            total_hist.record(total);
            sink.event(
                completion,
                EventKind::QueryComplete {
                    query: q.arrival.query as u32,
                    tenant: q.arrival.tenant as u32,
                },
            );
            if queue_cycles > 0 {
                sink.span(Phase::Queue, q.arrival.cycle, now);
            }
            if retire > 0 {
                sink.span(Phase::Execute, now, now + retire);
            }
            if penalty > 0 {
                sink.span(Phase::Recovery, now + retire, completion);
            }
            sink.record("serve.queue_cycles", queue_cycles);
            sink.record("serve.exec_cycles", exec_cycles);
            sink.record("serve.total_cycles", total);
            let tally = &mut tallies[q.arrival.tenant];
            tally.completed += 1;
            tally.total.record(total);
            let w = window_of(q.arrival.cycle);
            window_stats[w].completed += 1;
            window_hists[w].record(total);
            if total <= serve.tenants[q.arrival.tenant].slo_cycles {
                tally.slo_attained += 1;
                window_stats[w].slo_attained += 1;
            }
            makespan = makespan.max(completion);
            served[arrival_index(&arrivals, q.arrival)] = Some(q.arrival.query);
        }
        device_free = now + exec.total_cycles + max_penalty;
    }

    sink.counter("serve.batches", batches);
    sink.counter("serve.batched_queries", batched_queries);
    sink.counter(
        "serve.shed_queue",
        tallies.iter().map(|t| t.shed_queue).sum(),
    );
    sink.counter(
        "serve.shed_deadline",
        tallies.iter().map(|t| t.shed_deadline).sum(),
    );
    sink.counter("serve.completed", tallies.iter().map(|t| t.completed).sum());
    sink.gauge_max("serve.makespan_cycles", makespan);

    let recovery = match &fleet {
        Some(fl) => Some(fl.recovery_report()),
        None => fault_state.map(|(injector, _, mut rec)| {
            rec.injected = *injector.stats();
            rec
        }),
    };
    let resilience = fleet.map(|fl| {
        fl.resilience_report(storm_span.map(|(start, end)| {
            for (i, h) in window_hists.iter().enumerate() {
                window_stats[i].p99_cycles = h.quantile(0.99);
            }
            (
                start,
                end,
                window_stats[0],
                window_stats[1],
                window_stats[2],
            )
        }))
    });
    let fingerprint = results_fingerprint(&served, workload);
    let tenants = serve
        .tenants
        .iter()
        .zip(tallies)
        .map(|(spec, t)| {
            TenantReport::new(
                spec,
                t.offered,
                t.shed_queue,
                t.shed_deadline,
                t.completed,
                t.slo_attained,
                &t.total,
                makespan,
                mem_clock,
            )
        })
        .collect();

    ServeReport::new(
        serve,
        mem_clock,
        makespan,
        batches,
        batched_queries,
        &queue_hist,
        &exec_hist,
        &total_hist,
        tenants,
        recovery,
        resilience,
        fingerprint,
    )
}

/// Position of `a` in the sorted arrival list (unique by
/// `(cycle, tenant, seq)`).
fn arrival_index(arrivals: &[Arrival], a: Arrival) -> usize {
    arrivals
        .binary_search_by_key(&(a.cycle, a.tenant, a.seq), |x| (x.cycle, x.tenant, x.seq))
        .expect("arrival came from this list")
}
