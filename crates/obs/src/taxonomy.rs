//! Span and event taxonomy shared by every instrumented layer.
//!
//! The vocabulary is deliberately closed: phases and events are plain
//! `Copy` enums with integer payloads, so recording one is a couple of
//! moves — no strings, no allocation — and the trace contents are
//! bit-identical across runs by construction.

use std::fmt;

/// A span category: one phase of a query's life, in simulated cycles.
///
/// The first four mirror `sim`'s `QueryBreakdown` buckets (Fig. 9 of the
/// paper); the serving tier adds queue/execute; recovery covers fault
/// retry/fallback penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Host-side index traversal and result sorting.
    Traversal,
    /// NDP task offloading (query upload + set-search commands).
    Offload,
    /// Distance comparison (memory fetches + arithmetic).
    DistComp,
    /// Result collection (polling delay + processing).
    ResultCollect,
    /// Serving tier: waiting in the admission/batch queue.
    Queue,
    /// Serving tier: executing inside a wave batch.
    Execute,
    /// Host-side fault recovery (retries, backoff, exact fallback).
    Recovery,
}

impl Phase {
    /// Every phase, in canonical (attribution-table column) order.
    pub const ALL: [Phase; 7] = [
        Phase::Traversal,
        Phase::Offload,
        Phase::DistComp,
        Phase::ResultCollect,
        Phase::Queue,
        Phase::Execute,
        Phase::Recovery,
    ];

    /// Stable lowercase name used in JSON exports and table headers.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Traversal => "traversal",
            Phase::Offload => "offload",
            Phase::DistComp => "dist_comp",
            Phase::ResultCollect => "result_collect",
            Phase::Queue => "queue",
            Phase::Execute => "execute",
            Phase::Recovery => "recovery",
        }
    }

    /// Index into [`Phase::ALL`].
    pub fn index(&self) -> usize {
        Phase::ALL.iter().position(|p| p == self).expect("in ALL")
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// DRAM command classes surfaced to traces (mirrors the dram crate's
/// internal command kinds without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommandKind {
    Activate,
    Precharge,
    Read,
    Write,
    Refresh,
}

impl DramCommandKind {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            DramCommandKind::Activate => "activate",
            DramCommandKind::Precharge => "precharge",
            DramCommandKind::Read => "read",
            DramCommandKind::Write => "write",
            DramCommandKind::Refresh => "refresh",
        }
    }
}

impl fmt::Display for DramCommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point event inside a query's flight recording.
///
/// Payloads are integers only; everything needed to render a
/// human-readable detail string is carried in the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// ET plan chosen for a comparison: the schedule would fetch
    /// `full_lines` worst-case vs `natural_lines` without reordering.
    EtPlan { full_lines: u32, natural_lines: u32 },
    /// Bound exceeded: comparison aborted after `lines` of `planned`.
    EtTerminated { lines: u32, planned: u32 },
    /// Prefix-elimination outlier forced a backup recheck of `lines`.
    EtBackup { lines: u32 },
    /// Chunked evaluation needed a residual host round-trip.
    EtResumed,
    /// A dimension-group fetch of `lines` lines issued to `rank`.
    GroupFetch { rank: u32, lines: u32 },
    /// A QSHR entry was allocated on `rank` (`active` now in use).
    QshrAlloc { rank: u32, active: u32 },
    /// A QSHR entry on `rank` was freed (`active` still in use).
    QshrFree { rank: u32, active: u32 },
    /// Host polling for one batch: `polls` rounds, `wasted` cycles of
    /// observation delay past actual completion.
    PollRounds { polls: u32, wasted: u32 },
    /// Row-buffer outcome deltas for one batch window.
    RowBuffer {
        hits: u32,
        misses: u32,
        conflicts: u32,
    },
    /// One DRAM command issued (opt-in, high volume).
    DramCommand {
        kind: DramCommandKind,
        channel: u16,
        rank: u16,
    },
    /// Recovery: retry attempt `attempt` re-offloaded to `rank`.
    RecoveryRetry { rank: u32, attempt: u32 },
    /// Recovery: a CRC-rejected payload from `rank`.
    CrcRejected { rank: u32 },
    /// Recovery: retries exhausted; exact host fallback of `lines`.
    HostFallback { rank: u32, lines: u32 },
    /// Serving: a batch of `size` queries was formed.
    BatchFormed { size: u32 },
    /// Serving: this query was shed (`deadline`: missed deadline vs
    /// queue-depth backpressure).
    Shed { deadline: bool },
    /// Resilience: the circuit breaker on rank group `group` tripped
    /// open — offloads stop targeting the group.
    BreakerOpen { group: u32 },
    /// Resilience: the breaker on `group` entered half-open after its
    /// cooldown; the next offload probes the group.
    BreakerHalfOpen { group: u32 },
    /// Resilience: the breaker on `group` closed — probes succeeded and
    /// the group is back in service.
    BreakerClose { group: u32 },
    /// Resilience: a still-pending offload on group `from` was hedged to
    /// replica group `to` after the hedge delay elapsed.
    HedgeIssued { from: u32, to: u32 },
    /// Resilience: the hedge to `to` returned the first valid
    /// CRC-checked result and won the race.
    HedgeWin { to: u32 },
    /// Resilience: brownout admission control moved to `level`
    /// (0 = normal; higher levels shed earlier).
    Brownout { level: u32 },
    /// Serving: query `query` of tenant `tenant` completed. Emitted at
    /// the completion cycle, immediately before the query's spans, so
    /// windowed sinks can attribute the spans/records that follow.
    QueryComplete { query: u32, tenant: u32 },
    /// Maintenance: epoch `epoch` paused the device for `cycles`
    /// (compaction / re-validation), starting at the event cycle.
    CompactionPause { epoch: u32, cycles: u32 },
    /// Cluster: shard `shard` was skipped for a query — its ball lower
    /// bound proved it cannot improve the global top-k.
    ShardSkipped { shard: u32 },
    /// Cluster: shard `shard`'s breaker rejected the dispatch and the
    /// query was served by replica group `to` instead.
    ShardFailover { shard: u32, to: u32 },
    /// Cluster: the global kth bound tightened shard `shard`'s ET
    /// thresholds, saving `saved_lines` 64 B fetches in one hop.
    BoundPropagated { shard: u32, saved_lines: u32 },
}

impl EventKind {
    /// Stable short name (Perfetto event title, metrics key suffix).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::EtPlan { .. } => "et_plan",
            EventKind::EtTerminated { .. } => "et_terminated",
            EventKind::EtBackup { .. } => "et_backup",
            EventKind::EtResumed => "et_resumed",
            EventKind::GroupFetch { .. } => "group_fetch",
            EventKind::QshrAlloc { .. } => "qshr_alloc",
            EventKind::QshrFree { .. } => "qshr_free",
            EventKind::PollRounds { .. } => "poll_rounds",
            EventKind::RowBuffer { .. } => "row_buffer",
            EventKind::DramCommand { .. } => "dram_command",
            EventKind::RecoveryRetry { .. } => "recovery_retry",
            EventKind::CrcRejected { .. } => "crc_rejected",
            EventKind::HostFallback { .. } => "host_fallback",
            EventKind::BatchFormed { .. } => "batch_formed",
            EventKind::Shed { .. } => "shed",
            EventKind::BreakerOpen { .. } => "breaker_open",
            EventKind::BreakerHalfOpen { .. } => "breaker_half_open",
            EventKind::BreakerClose { .. } => "breaker_close",
            EventKind::HedgeIssued { .. } => "hedge_issued",
            EventKind::HedgeWin { .. } => "hedge_win",
            EventKind::Brownout { .. } => "brownout",
            EventKind::QueryComplete { .. } => "query_complete",
            EventKind::CompactionPause { .. } => "compaction_pause",
            EventKind::ShardSkipped { .. } => "shard_skipped",
            EventKind::ShardFailover { .. } => "shard_failover",
            EventKind::BoundPropagated { .. } => "bound_propagated",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventKind::EtPlan {
                full_lines,
                natural_lines,
            } => write!(f, "et_plan full={full_lines} natural={natural_lines}"),
            EventKind::EtTerminated { lines, planned } => {
                write!(f, "et_terminated lines={lines}/{planned}")
            }
            EventKind::EtBackup { lines } => write!(f, "et_backup lines={lines}"),
            EventKind::EtResumed => write!(f, "et_resumed"),
            EventKind::GroupFetch { rank, lines } => {
                write!(f, "group_fetch rank={rank} lines={lines}")
            }
            EventKind::QshrAlloc { rank, active } => {
                write!(f, "qshr_alloc rank={rank} active={active}")
            }
            EventKind::QshrFree { rank, active } => {
                write!(f, "qshr_free rank={rank} active={active}")
            }
            EventKind::PollRounds { polls, wasted } => {
                write!(f, "poll_rounds polls={polls} wasted={wasted}")
            }
            EventKind::RowBuffer {
                hits,
                misses,
                conflicts,
            } => write!(
                f,
                "row_buffer hits={hits} misses={misses} conflicts={conflicts}"
            ),
            EventKind::DramCommand {
                kind,
                channel,
                rank,
            } => write!(f, "dram {kind} ch={channel} rank={rank}"),
            EventKind::RecoveryRetry { rank, attempt } => {
                write!(f, "recovery_retry rank={rank} attempt={attempt}")
            }
            EventKind::CrcRejected { rank } => write!(f, "crc_rejected rank={rank}"),
            EventKind::HostFallback { rank, lines } => {
                write!(f, "host_fallback rank={rank} lines={lines}")
            }
            EventKind::BatchFormed { size } => write!(f, "batch_formed size={size}"),
            EventKind::Shed { deadline } => write!(f, "shed deadline={deadline}"),
            EventKind::BreakerOpen { group } => write!(f, "breaker_open group={group}"),
            EventKind::BreakerHalfOpen { group } => {
                write!(f, "breaker_half_open group={group}")
            }
            EventKind::BreakerClose { group } => write!(f, "breaker_close group={group}"),
            EventKind::HedgeIssued { from, to } => {
                write!(f, "hedge_issued from={from} to={to}")
            }
            EventKind::HedgeWin { to } => write!(f, "hedge_win to={to}"),
            EventKind::Brownout { level } => write!(f, "brownout level={level}"),
            EventKind::QueryComplete { query, tenant } => {
                write!(f, "query_complete query={query} tenant={tenant}")
            }
            EventKind::CompactionPause { epoch, cycles } => {
                write!(f, "compaction_pause epoch={epoch} cycles={cycles}")
            }
            EventKind::ShardSkipped { shard } => write!(f, "shard_skipped shard={shard}"),
            EventKind::ShardFailover { shard, to } => {
                write!(f, "shard_failover shard={shard} to={to}")
            }
            EventKind::BoundPropagated { shard, saved_lines } => {
                write!(f, "bound_propagated shard={shard} saved={saved_lines}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_index_roundtrips() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Phase::DistComp.to_string(), "dist_comp");
        assert_eq!(
            EventKind::EtTerminated {
                lines: 3,
                planned: 9
            }
            .to_string(),
            "et_terminated lines=3/9"
        );
        assert_eq!(
            EventKind::DramCommand {
                kind: DramCommandKind::Activate,
                channel: 1,
                rank: 2
            }
            .to_string(),
            "dram activate ch=1 rank=2"
        );
        assert_eq!(
            EventKind::BreakerOpen { group: 3 }.to_string(),
            "breaker_open group=3"
        );
        assert_eq!(
            EventKind::HedgeIssued { from: 0, to: 5 }.to_string(),
            "hedge_issued from=0 to=5"
        );
        assert_eq!(
            EventKind::Brownout { level: 2 }.to_string(),
            "brownout level=2"
        );
        assert_eq!(
            EventKind::BreakerHalfOpen { group: 1 }.name(),
            "breaker_half_open"
        );
        assert_eq!(EventKind::BreakerClose { group: 1 }.name(), "breaker_close");
        assert_eq!(EventKind::HedgeWin { to: 2 }.name(), "hedge_win");
        assert_eq!(
            EventKind::QueryComplete {
                query: 9,
                tenant: 1
            }
            .to_string(),
            "query_complete query=9 tenant=1"
        );
        assert_eq!(
            EventKind::CompactionPause {
                epoch: 2,
                cycles: 640
            }
            .to_string(),
            "compaction_pause epoch=2 cycles=640"
        );
        assert_eq!(
            EventKind::ShardSkipped { shard: 3 }.to_string(),
            "shard_skipped shard=3"
        );
        assert_eq!(
            EventKind::ShardFailover { shard: 1, to: 2 }.to_string(),
            "shard_failover shard=1 to=2"
        );
        assert_eq!(
            EventKind::BoundPropagated {
                shard: 0,
                saved_lines: 12
            }
            .name(),
            "bound_propagated"
        );
    }
}
