//! Per-phase cycle-attribution table.
//!
//! Turns a set of query traces into the per-stage breakdown tables the
//! paper's figures are built from: one row per query, one column per
//! phase that carries any cycles, plus a TOTAL row with percentages.
//! The replay core emits spans that tile each query's life exactly, so
//! every row's phase columns sum to its end-to-end cycle count —
//! [`attribution_check`] asserts that invariant and tests rely on it.

use crate::recorder::QueryTrace;
use crate::taxonomy::Phase;

/// Verify that each trace's spans tile its total: phase sums equal
/// `total_cycles`. Returns the first offending query as
/// `Err((query, attributed, total))`.
pub fn attribution_check(traces: &[&QueryTrace]) -> Result<(), (usize, u64, u64)> {
    for t in traces {
        let attributed = t.attributed_cycles();
        if attributed != t.total_cycles {
            return Err((t.query, attributed, t.total_cycles));
        }
    }
    Ok(())
}

/// Render the attribution table for `traces` (rows keep the given
/// order; columns are phases with nonzero cycles anywhere).
pub fn attribution_table(traces: &[&QueryTrace]) -> String {
    let mut used = [false; Phase::ALL.len()];
    for t in traces {
        for (i, &c) in t.phase_cycles().iter().enumerate() {
            used[i] |= c > 0;
        }
    }
    let cols: Vec<Phase> = Phase::ALL
        .iter()
        .copied()
        .filter(|p| used[p.index()])
        .collect();

    let mut out = String::new();
    out.push_str(&format!("{:>8}  {:>12}", "query", "cycles"));
    for p in &cols {
        out.push_str(&format!("  {:>14}", p.as_str()));
    }
    out.push('\n');

    let mut totals = vec![0u64; cols.len()];
    let mut grand = 0u64;
    for t in traces {
        let pc = t.phase_cycles();
        out.push_str(&format!("{:>8}  {:>12}", t.query, t.total_cycles));
        for (ci, p) in cols.iter().enumerate() {
            let c = pc[p.index()];
            totals[ci] += c;
            out.push_str(&format!("  {c:>14}"));
        }
        grand += t.total_cycles;
        out.push('\n');
    }
    out.push_str(&format!("{:>8}  {:>12}", "TOTAL", grand));
    for &c in &totals {
        out.push_str(&format!("  {c:>14}"));
    }
    out.push('\n');
    out.push_str(&format!("{:>8}  {:>12}", "", ""));
    for &c in &totals {
        let pct = if grand == 0 {
            0.0
        } else {
            100.0 * c as f64 / grand as f64
        };
        out.push_str(&format!("  {:>13.1}%", pct));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{QueryRecorder, RecorderConfig};
    use crate::sink::TraceSink;

    fn trace(q: usize, spans: &[(Phase, u64, u64)], total: u64) -> QueryTrace {
        let mut r = QueryRecorder::new(q, RecorderConfig::default());
        for &(p, s, e) in spans {
            r.span(p, s, e);
        }
        r.finish(total)
    }

    #[test]
    fn check_accepts_tiled_spans() {
        let t = trace(
            0,
            &[(Phase::Traversal, 0, 40), (Phase::DistComp, 40, 100)],
            100,
        );
        assert_eq!(attribution_check(&[&t]), Ok(()));
    }

    #[test]
    fn check_reports_gap() {
        let t = trace(7, &[(Phase::Traversal, 0, 40)], 100);
        assert_eq!(attribution_check(&[&t]), Err((7, 40, 100)));
    }

    #[test]
    fn table_sums_and_percentages() {
        let a = trace(
            0,
            &[(Phase::Traversal, 0, 25), (Phase::DistComp, 25, 100)],
            100,
        );
        let b = trace(
            1,
            &[(Phase::Traversal, 0, 75), (Phase::DistComp, 75, 100)],
            100,
        );
        let table = attribution_table(&[&a, &b]);
        assert!(table.contains("traversal"));
        assert!(table.contains("dist_comp"));
        assert!(!table.contains("queue"), "unused column leaked:\n{table}");
        assert!(table.contains("TOTAL"));
        assert!(table.contains("200"));
        assert!(table.contains("50.0%"), "{table}");
    }
}
