//! Automated tail-latency forensics.
//!
//! When a query breaches the armed latency threshold, the ops plane
//! assembles a [`ForensicDigest`]: the query's span breakdown (queue /
//! execute / recovery, which tile its end-to-end latency) plus
//! [`ForensicEvidence`] gathered from concurrent fleet events inside the
//! query's `[arrival, completion)` window. [`classify`] then names the
//! dominant cause: first by which span bucket dominates, then by the
//! most specific mechanism the evidence supports, falling back to the
//! generic bucket cause (never `Unknown` for a query that actually
//! spent cycles).

use std::fmt;

use crate::metrics::json_string;

/// Root causes the classifier can attribute a tail breach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForensicCause {
    /// A breaker-open reroute (replica ring hop or host fallback)
    /// inflated the query.
    BreakerReroute,
    /// The primary offload blew past the hedge delay; the query paid
    /// the hedge race.
    HedgeTimeout,
    /// Repeated poll-retry / CRC-reject rounds dominated recovery.
    PollRetryStorm,
    /// A burst of DRAM row-buffer conflicts slowed the waves.
    RowConflictBurst,
    /// The query waited out a compaction / re-validation pause.
    CompactionPauseOverlap,
    /// Brownout admission left the query queued behind tightened
    /// admission.
    BrownoutQueueWait,
    /// Queue wait dominated without a more specific mechanism.
    QueueSaturation,
    /// Wave execution dominated without a more specific mechanism.
    ExecutionHeavy,
    /// Recovery dominated but no fault events landed in the window
    /// (e.g. a silent device stall).
    DeviceDegraded,
    /// No cycles attributed — should not happen for a real completion.
    Unknown,
}

impl ForensicCause {
    /// Stable lowercase name (JSON value, exposition label).
    pub fn as_str(&self) -> &'static str {
        match self {
            ForensicCause::BreakerReroute => "breaker_reroute",
            ForensicCause::HedgeTimeout => "hedge_timeout",
            ForensicCause::PollRetryStorm => "poll_retry_storm",
            ForensicCause::RowConflictBurst => "row_conflict_burst",
            ForensicCause::CompactionPauseOverlap => "compaction_pause_overlap",
            ForensicCause::BrownoutQueueWait => "brownout_queue_wait",
            ForensicCause::QueueSaturation => "queue_saturation",
            ForensicCause::ExecutionHeavy => "execution_heavy",
            ForensicCause::DeviceDegraded => "device_degraded",
            ForensicCause::Unknown => "unknown",
        }
    }
}

impl fmt::Display for ForensicCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fleet-event evidence gathered over a breaching query's
/// `[arrival, completion)` window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForensicEvidence {
    /// Recovery retry attempts observed in the window.
    pub retries: u64,
    /// CRC-rejected payloads observed in the window.
    pub crc_rejected: u64,
    /// Exact host fallbacks observed in the window.
    pub host_fallbacks: u64,
    /// Hedged offloads issued in the window.
    pub hedges_issued: u64,
    /// Hedge races won in the window.
    pub hedge_wins: u64,
    /// Rank-group breakers open at the query's dispatch cycle.
    pub breakers_open_at_dispatch: u64,
    /// Brownout admission level at the query's dispatch cycle.
    pub brownout_level_at_dispatch: u64,
    /// Cycles of compaction / maintenance pause overlapping the window.
    pub pause_overlap_cycles: u64,
    /// Row-buffer hits observed in the window.
    pub row_hits: u64,
    /// Row-buffer misses observed in the window.
    pub row_misses: u64,
    /// Row-buffer conflicts observed in the window.
    pub row_conflicts: u64,
}

impl ForensicEvidence {
    fn json_fields(&self) -> String {
        format!(
            "\"retries\": {}, \"crc_rejected\": {}, \"host_fallbacks\": {}, \
             \"hedges_issued\": {}, \"hedge_wins\": {}, \
             \"breakers_open_at_dispatch\": {}, \"brownout_level_at_dispatch\": {}, \
             \"pause_overlap_cycles\": {}, \"row_hits\": {}, \"row_misses\": {}, \
             \"row_conflicts\": {}",
            self.retries,
            self.crc_rejected,
            self.host_fallbacks,
            self.hedges_issued,
            self.hedge_wins,
            self.breakers_open_at_dispatch,
            self.brownout_level_at_dispatch,
            self.pause_overlap_cycles,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
        )
    }
}

/// Name the dominant cause of a breach from the span breakdown and the
/// window evidence. `queue + execute + recovery` is the query's
/// end-to-end latency; the dominant bucket picks the branch, the
/// evidence picks the mechanism.
pub fn classify(queue: u64, execute: u64, recovery: u64, ev: &ForensicEvidence) -> ForensicCause {
    if queue == 0 && execute == 0 && recovery == 0 {
        return ForensicCause::Unknown;
    }
    // Dominant bucket; ties break toward the more actionable cause
    // (recovery, then queue, then execute).
    if recovery >= queue && recovery >= execute && recovery > 0 {
        if ev.hedges_issued > 0 {
            return ForensicCause::HedgeTimeout;
        }
        if ev.retries + ev.crc_rejected >= 2 {
            return ForensicCause::PollRetryStorm;
        }
        if ev.breakers_open_at_dispatch > 0 || ev.host_fallbacks > 0 {
            return ForensicCause::BreakerReroute;
        }
        if ev.retries + ev.crc_rejected > 0 {
            return ForensicCause::PollRetryStorm;
        }
        return ForensicCause::DeviceDegraded;
    }
    if queue >= execute {
        if ev.pause_overlap_cycles > 0 {
            return ForensicCause::CompactionPauseOverlap;
        }
        if ev.brownout_level_at_dispatch > 0 {
            return ForensicCause::BrownoutQueueWait;
        }
        if ev.breakers_open_at_dispatch > 0 {
            return ForensicCause::BreakerReroute;
        }
        return ForensicCause::QueueSaturation;
    }
    let row_total = ev.row_hits + ev.row_misses + ev.row_conflicts;
    if ev.row_conflicts > 0 && ev.row_conflicts * 4 >= row_total {
        return ForensicCause::RowConflictBurst;
    }
    if ev.breakers_open_at_dispatch > 0 {
        return ForensicCause::BreakerReroute;
    }
    ForensicCause::ExecutionHeavy
}

/// The forensic digest of one tail breach.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicDigest {
    /// Workload query index.
    pub query: u32,
    /// Tenant index.
    pub tenant: u32,
    /// Arrival cycle (completion − total).
    pub arrival_cycle: u64,
    /// Completion cycle.
    pub completion_cycle: u64,
    /// End-to-end latency (cycles).
    pub total_cycles: u64,
    /// Queue-wait share of the latency.
    pub queue_cycles: u64,
    /// Pure wave-execution share.
    pub execute_cycles: u64,
    /// Fault-recovery share.
    pub recovery_cycles: u64,
    /// The armed breach threshold this query exceeded.
    pub threshold_cycles: u64,
    /// Attributed dominant cause.
    pub cause: ForensicCause,
    /// The evidence behind the attribution.
    pub evidence: ForensicEvidence,
}

impl ForensicDigest {
    /// Deterministic single-object JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"query\": {}, \"tenant\": {}, \"arrival_cycle\": {}, \
             \"completion_cycle\": {}, \"total_cycles\": {}, \"queue_cycles\": {}, \
             \"execute_cycles\": {}, \"recovery_cycles\": {}, \"threshold_cycles\": {}, \
             \"cause\": {}, \"evidence\": {{{}}}}}",
            self.query,
            self.tenant,
            self.arrival_cycle,
            self.completion_cycle,
            self.total_cycles,
            self.queue_cycles,
            self.execute_cycles,
            self.recovery_cycles,
            self.threshold_cycles,
            json_string(self.cause.as_str()),
            self.evidence.json_fields(),
        )
    }
}

impl fmt::Display for ForensicDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query {} (tenant {}) breached {} cycles at cycle {}: total={} \
             (queue={} execute={} recovery={}) — cause: {}",
            self.query,
            self.tenant,
            self.threshold_cycles,
            self.completion_cycle,
            self.total_cycles,
            self.queue_cycles,
            self.execute_cycles,
            self.recovery_cycles,
            self.cause
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_spans_are_unknown() {
        assert_eq!(
            classify(0, 0, 0, &ForensicEvidence::default()),
            ForensicCause::Unknown
        );
    }

    #[test]
    fn recovery_dominant_branches() {
        let mut ev = ForensicEvidence {
            hedges_issued: 1,
            ..Default::default()
        };
        assert_eq!(classify(10, 20, 100, &ev), ForensicCause::HedgeTimeout);
        ev.hedges_issued = 0;
        ev.retries = 3;
        assert_eq!(classify(10, 20, 100, &ev), ForensicCause::PollRetryStorm);
        ev.retries = 0;
        ev.breakers_open_at_dispatch = 2;
        assert_eq!(classify(10, 20, 100, &ev), ForensicCause::BreakerReroute);
        ev.breakers_open_at_dispatch = 0;
        ev.crc_rejected = 1;
        assert_eq!(classify(10, 20, 100, &ev), ForensicCause::PollRetryStorm);
        ev.crc_rejected = 0;
        assert_eq!(classify(10, 20, 100, &ev), ForensicCause::DeviceDegraded);
    }

    #[test]
    fn queue_dominant_branches() {
        let mut ev = ForensicEvidence {
            pause_overlap_cycles: 500,
            ..Default::default()
        };
        assert_eq!(
            classify(100, 20, 0, &ev),
            ForensicCause::CompactionPauseOverlap
        );
        ev.pause_overlap_cycles = 0;
        ev.brownout_level_at_dispatch = 2;
        assert_eq!(classify(100, 20, 0, &ev), ForensicCause::BrownoutQueueWait);
        ev.brownout_level_at_dispatch = 0;
        ev.breakers_open_at_dispatch = 1;
        assert_eq!(classify(100, 20, 0, &ev), ForensicCause::BreakerReroute);
        ev.breakers_open_at_dispatch = 0;
        assert_eq!(classify(100, 20, 0, &ev), ForensicCause::QueueSaturation);
    }

    #[test]
    fn execute_dominant_branches() {
        let mut ev = ForensicEvidence {
            row_hits: 10,
            row_misses: 2,
            row_conflicts: 20,
            ..Default::default()
        };
        assert_eq!(classify(10, 100, 0, &ev), ForensicCause::RowConflictBurst);
        ev.row_conflicts = 1;
        assert_eq!(classify(10, 100, 0, &ev), ForensicCause::ExecutionHeavy);
        ev.breakers_open_at_dispatch = 1;
        assert_eq!(classify(10, 100, 0, &ev), ForensicCause::BreakerReroute);
    }

    #[test]
    fn digest_json_and_display() {
        let d = ForensicDigest {
            query: 7,
            tenant: 1,
            arrival_cycle: 1_000,
            completion_cycle: 9_000,
            total_cycles: 8_000,
            queue_cycles: 6_000,
            execute_cycles: 1_500,
            recovery_cycles: 500,
            threshold_cycles: 4_000,
            cause: ForensicCause::BrownoutQueueWait,
            evidence: ForensicEvidence {
                brownout_level_at_dispatch: 2,
                ..Default::default()
            },
        };
        let j = d.to_json();
        assert!(j.contains("\"cause\": \"brownout_queue_wait\""));
        assert!(j.contains("\"brownout_level_at_dispatch\": 2"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = d.to_string();
        assert!(t.contains("query 7") && t.contains("brownout_queue_wait"));
    }
}
