//! Named-metric registry with deterministic merge and export.
//!
//! One registry is a *shard*: each worker thread (or per-query recorder)
//! owns its own, and shards are folded together in query order — the
//! same lock-free-by-construction scheme `sim::parallel` uses for
//! replay stats. Keys are `&'static str` so recording never allocates;
//! storage is a `BTreeMap` so snapshots iterate in one canonical order
//! and the JSON export is byte-stable across runs and thread counts.

use std::collections::BTreeMap;
use std::fmt;

use crate::histogram::LatencyHistogram;

/// One metric slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic sum.
    Counter(u64),
    /// High-watermark gauge (merge takes the max).
    Gauge(u64),
    /// Log-bucketed distribution.
    Histogram(LatencyHistogram),
}

/// A shard of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    map: BTreeMap<&'static str, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        match self.map.entry(name).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Raise gauge `name` to at least `value`.
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        match self.map.entry(name).or_insert(Metric::Gauge(0)) {
            Metric::Gauge(g) => *g = (*g).max(value),
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Record `value` into histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        match self
            .map
            .entry(name)
            .or_insert_with(|| Metric::Histogram(LatencyHistogram::new()))
        {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Current value of counter `name` (0 if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.map.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of gauge `name` (0 if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> u64 {
        match self.map.get(name) {
            Some(Metric::Gauge(g)) => *g,
            _ => 0,
        }
    }

    /// The histogram under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        match self.map.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of metric slots.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate slots in canonical (sorted-key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Metric)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// Fold another shard into this one. Counters add, gauges take the
    /// max, histograms merge bucket-wise; kinds must agree per key.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, m) in &other.map {
            match (self.map.entry(name), m) {
                (std::collections::btree_map::Entry::Vacant(e), m) => {
                    e.insert(m.clone());
                }
                (std::collections::btree_map::Entry::Occupied(mut e), m) => {
                    match (e.get_mut(), m) {
                        (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                        (Metric::Gauge(a), Metric::Gauge(b)) => *a = (*a).max(*b),
                        (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                        (a, b) => panic!("metric {name:?} kind mismatch: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    /// Deterministic JSON snapshot: an object keyed by metric name,
    /// sorted, with fixed-precision floats. Byte-stable for equal
    /// registries.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut first = true;
        for (name, m) in &self.map {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            match m {
                Metric::Counter(c) => {
                    s.push_str(&format!(
                        "  {}: {{\"type\": \"counter\", \"value\": {c}}}",
                        json_string(name)
                    ));
                }
                Metric::Gauge(g) => {
                    s.push_str(&format!(
                        "  {}: {{\"type\": \"gauge\", \"value\": {g}}}",
                        json_string(name)
                    ));
                }
                Metric::Histogram(h) => {
                    s.push_str(&format!(
                        "  {}: {{\"type\": \"histogram\", \"count\": {}, \"max\": {}, \
                         \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        json_string(name),
                        h.count(),
                        h.max(),
                        json_f64(h.mean()),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    ));
                }
            }
        }
        s.push_str("\n}");
        s
    }
}

impl fmt::Display for MetricsRegistry {
    /// Aligned text table, one metric per row, canonical order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.map.keys().map(|k| k.len()).max().unwrap_or(6).max(6);
        writeln!(f, "{:width$}  value", "metric")?;
        for (name, m) in &self.map {
            match m {
                Metric::Counter(c) => writeln!(f, "{name:width$}  {c}")?,
                Metric::Gauge(g) => writeln!(f, "{name:width$}  {g} (max)")?,
                Metric::Histogram(h) => writeln!(
                    f,
                    "{name:width$}  n={} mean={:.1} p50={} p99={} max={}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max()
                )?,
            }
        }
        Ok(())
    }
}

/// Sanitize a metric name for Prometheus exposition: every character
/// outside `[a-zA-Z0-9_]` becomes `_`, and the `ansmet_` namespace
/// prefix is prepended.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("ansmet_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a registry in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` headers, counters and gauges as plain
/// samples, histograms as summaries with `quantile` labels plus
/// `_sum`/`_count`. Deterministic: metrics appear in canonical
/// (sorted-key) order with integer sample values only.
pub fn prometheus_exposition(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, m) in registry.iter() {
        let p = prom_name(name);
        match m {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {p} counter\n{p} {c}\n"));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {p} gauge\n{p} {g}\n"));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {p} summary\n"));
                for (label, q) in [
                    ("0.5", 0.50),
                    ("0.95", 0.95),
                    ("0.99", 0.99),
                    ("0.999", 0.999),
                ] {
                    out.push_str(&format!("{p}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
                }
                out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum(), h.count()));
            }
        }
    }
    out
}

/// Escape `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Fixed-precision float rendering so JSON output is byte-stable.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.counter_add("replay.lines", 10);
        r.counter_add("replay.lines", 5);
        r.gauge_max("qshr.active", 3);
        r.gauge_max("qshr.active", 2);
        r.record("lat", 100);
        r.record("lat", 300);
        assert_eq!(r.counter("replay.lines"), 15);
        assert_eq!(r.gauge("qshr.active"), 3);
        assert_eq!(r.histogram("lat").unwrap().count(), 2);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let mut both = MetricsRegistry::new();
        a.counter_add("c", 4);
        both.counter_add("c", 4);
        a.record("h", 10);
        both.record("h", 10);
        b.counter_add("c", 6);
        both.counter_add("c", 6);
        b.gauge_max("g", 9);
        both.gauge_max("g", 9);
        b.record("h", 20);
        both.record("h", 20);
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.to_json(), both.to_json());
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        let j = r.to_json();
        let za = j.find("z.last").unwrap();
        let aa = j.find("a.first").unwrap();
        assert!(aa < za, "keys not sorted:\n{j}");
        assert_eq!(j, r.clone().to_json());
    }

    #[test]
    fn json_escape() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(1.5), "1.5000");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut r = MetricsRegistry::new();
        r.counter_add("serve.completed", 42);
        r.gauge_max("serve.queue_depth", 7);
        r.record("serve.total_cycles", 100);
        r.record("serve.total_cycles", 900);
        let text = prometheus_exposition(&r);
        assert!(text.contains("# TYPE ansmet_serve_completed counter\nansmet_serve_completed 42\n"));
        assert!(
            text.contains("# TYPE ansmet_serve_queue_depth gauge\nansmet_serve_queue_depth 7\n")
        );
        assert!(text.contains("# TYPE ansmet_serve_total_cycles summary\n"));
        assert!(text.contains("ansmet_serve_total_cycles{quantile=\"0.99\"}"));
        assert!(text.contains("ansmet_serve_total_cycles_sum 1000\n"));
        assert!(text.contains("ansmet_serve_total_cycles_count 2\n"));
        // Deterministic across calls.
        assert_eq!(text, prometheus_exposition(&r));
        // No un-sanitized dots leak into sample names.
        assert!(!text.contains("serve.completed"));
    }

    #[test]
    fn display_renders_all_kinds() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 1);
        r.gauge_max("g", 2);
        r.record("h", 3);
        let t = r.to_string();
        assert!(t.contains("c") && t.contains("(max)") && t.contains("p99"));
    }
}
