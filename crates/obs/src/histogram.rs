//! Log-bucketed (HDR-style) latency histograms.
//!
//! Latencies span five orders of magnitude between a cache-warm hop and
//! a fault-recovery tail, so linear buckets either blur the tail or blow
//! up memory. The classic fix (HdrHistogram) is log-linear bucketing:
//! every power-of-two value range is split into a fixed number of linear
//! sub-buckets, giving a bounded relative error (here ≤ 1/32 ≈ 3 %) at a
//! fixed, small footprint. Recording and quantile queries are exact
//! integer arithmetic — no floats touch the bucket math — so histograms
//! (and everything derived from them) are bit-identical across runs.

/// Linear sub-buckets per power-of-two range (2^5).
const SUB_BUCKETS: u64 = 32;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;
/// Bucket-array length covering all of `u64`: values below 32 map to
/// their own bucket; every further power-of-two range (exponents 5..=63)
/// contributes 32 sub-buckets.
const BUCKETS: usize = (SUB_BUCKETS as usize) * 60;

/// A log-bucketed histogram of `u64` samples (latencies in cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of `v`.
    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros(); // v ∈ [2^exp, 2^(exp+1))
            let g = (exp - SUB_BITS) as u64;
            let sub = (v >> g) - SUB_BUCKETS; // top 5 bits below the MSB
            (SUB_BUCKETS * (g + 1) + sub) as usize
        }
    }

    /// Highest value equivalent to bucket `idx` (its inclusive upper
    /// bound), mirroring HdrHistogram's `highestEquivalentValue`.
    fn bucket_upper(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            idx
        } else {
            let g = (idx / SUB_BUCKETS - 1) as u32;
            let sub = idx % SUB_BUCKETS;
            // The topmost bucket's upper bound overflows u64; saturate.
            // `checked_shl` only guards the shift amount, so also verify
            // no value bits were shifted out before subtracting.
            let top = SUB_BUCKETS + sub + 1;
            top.checked_shl(g)
                .filter(|v| v >> g == top)
                .map(|v| v - 1)
                .unwrap_or(u64::MAX)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of the recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded samples (exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the smallest bucket upper
    /// bound such that at least `⌈q·count⌉` samples are ≤ it. Returns 0
    /// on an empty histogram; the answer is clamped to the observed
    /// maximum so `quantile(1.0) == max()`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.max(), 31);
        assert!((h.mean() - 15.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for idx in 1..BUCKETS {
            let u = LatencyHistogram::bucket_upper(idx);
            assert!(u > prev, "idx {idx}: {u} <= {prev}");
            prev = u;
        }
        // Every value indexes into range and sits under its bucket bound.
        for v in [
            0,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            1 << 20,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = LatencyHistogram::index(v);
            assert!(i < BUCKETS, "v {v} -> {i}");
            assert!(LatencyHistogram::bucket_upper(i) >= v);
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        let v = 1_234_567u64;
        h.record(v);
        let got = h.quantile(0.5);
        assert!(got >= v);
        assert!((got - v) as f64 / v as f64 <= 1.0 / 32.0 + 1e-9, "{got}");
    }

    #[test]
    fn quantiles_on_spread() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((470..=540).contains(&p50), "p50 {p50}");
        assert!((960..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [3u64, 900, 17, 65_000, 12] {
            a.record(v);
            both.record(v);
        }
        for v in [8u64, 2_000_000, 44] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(7_777);
        for q in [0.0, 0.001, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), h.max(), "q={q}");
        }
        // The bucketed answer is clamped to the exact observed max.
        assert_eq!(h.quantile(1.0), 7_777);
        assert_eq!(h.sum(), 7_777);
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(u64::MAX / 2 + 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // All three land in the saturated top range; quantiles stay
        // clamped to the observed max instead of a wrapped bound.
        assert!(h.quantile(0.5) >= u64::MAX / 2);
        assert_eq!(
            h.sum(),
            (u64::MAX as u128) * 2 + (u64::MAX / 2 + 1) as u128 - 1
        );
    }

    #[test]
    fn merge_is_order_independent() {
        let samples_a = [3u64, 900, 17, 65_000, 12, u64::MAX];
        let samples_b = [8u64, 2_000_000, 44, 0, 31];
        let mut ab = LatencyHistogram::new();
        let mut ba = LatencyHistogram::new();
        let (mut a, mut b) = (LatencyHistogram::new(), LatencyHistogram::new());
        for v in samples_a {
            a.record(v);
        }
        for v in samples_b {
            b.record(v);
        }
        ab.merge(&a);
        ab.merge(&b);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ab.quantile(q), ba.quantile(q), "q={q}");
        }
    }
}
