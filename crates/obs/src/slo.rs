//! SLO objectives with multi-window burn-rate alerting.
//!
//! An SLO is "fraction of good events ≥ `target`"; an event is good when
//! the query completed within its latency threshold (sheds are always
//! bad). The *burn rate* of a window is the window's bad fraction
//! divided by the error budget `1 - target`: burn 1.0 consumes exactly
//! the budget, burn 10 consumes it ten times as fast. Alerts follow the
//! classic multi-window scheme: fire only when **both** a fast and a
//! slow window burn above the fire threshold (fast = responsive, slow =
//! flap-resistant), and clear with hysteresis once both drop below a
//! lower clear threshold.
//!
//! The timeline is computed deterministically after the fact: events are
//! bucketed onto the fast-window grid and the fire/clear state machine
//! is evaluated at every fast-window boundary, so the alert log is a
//! pure function of the (cycle, good) observation set — bit-identical
//! across reruns and thread counts.

use std::fmt;

use crate::metrics::{json_f64, json_string};

/// One service-level objective with its alerting policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (JSON key, exposition label).
    pub name: &'static str,
    /// A completion is good iff its total latency ≤ this (cycles).
    pub threshold_cycles: u64,
    /// Good-fraction objective in `(0, 1)`, e.g. `0.9`.
    pub target: f64,
    /// Fast alert window (cycles).
    pub fast_window_cycles: u64,
    /// Slow alert window (cycles); must be a positive multiple of the
    /// fast window.
    pub slow_window_cycles: u64,
    /// Fire when both windows burn at ≥ this rate.
    pub fire_burn: f64,
    /// Clear when both windows burn below this rate (< `fire_burn`).
    pub clear_burn: f64,
    /// Minimum observations in the slow window before firing.
    pub min_count: u64,
}

impl SloSpec {
    fn validate(&self) {
        assert!(self.fast_window_cycles > 0, "fast window must be nonzero");
        assert!(
            self.slow_window_cycles >= self.fast_window_cycles
                && self
                    .slow_window_cycles
                    .is_multiple_of(self.fast_window_cycles),
            "slow window must be a positive multiple of the fast window"
        );
        assert!(
            self.target > 0.0 && self.target < 1.0,
            "target must be in (0, 1)"
        );
        assert!(
            self.clear_burn < self.fire_burn,
            "clear threshold must sit below the fire threshold"
        );
    }
}

/// Burn rate of a window with `good`/`bad` events against `target`:
/// bad fraction over error budget. Zero when the window is empty.
pub fn burn_rate(good: u64, bad: u64, target: f64) -> f64 {
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    let bad_frac = bad as f64 / total as f64;
    let budget = (1.0 - target).max(f64::MIN_POSITIVE);
    bad_frac / budget
}

/// One fire or clear transition in an alert timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Fast-window boundary (cycle) at which the transition happened.
    pub cycle: u64,
    /// `true` = fired, `false` = cleared.
    pub fired: bool,
    /// Fast-window burn rate at the boundary.
    pub fast_burn: f64,
    /// Slow-window burn rate at the boundary.
    pub slow_burn: f64,
}

/// The deterministic alert timeline of one SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertLog {
    /// Objective name.
    pub slo: &'static str,
    /// Fire/clear transitions in cycle order.
    pub events: Vec<AlertEvent>,
}

impl AlertLog {
    /// Cycle of the first fire transition, if any.
    pub fn first_fire(&self) -> Option<u64> {
        self.events.iter().find(|e| e.fired).map(|e| e.cycle)
    }

    /// Cycle of the last clear transition, if any.
    pub fn last_clear(&self) -> Option<u64> {
        self.events.iter().rev().find(|e| !e.fired).map(|e| e.cycle)
    }

    /// Whether the alert is still firing after the last transition.
    pub fn firing_at_end(&self) -> bool {
        self.events.last().map(|e| e.fired).unwrap_or(false)
    }

    /// Deterministic JSON: objective name plus the transition list.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"slo\": {}, \"events\": [", json_string(self.slo));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"cycle\": {}, \"state\": \"{}\", \"fast_burn\": {}, \"slow_burn\": {}}}",
                e.cycle,
                if e.fired { "fire" } else { "clear" },
                json_f64(e.fast_burn),
                json_f64(e.slow_burn),
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for AlertLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "alert timeline [{}]: {} transitions",
            self.slo,
            self.events.len()
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  cycle {:>12}  {}  fast_burn={:.2} slow_burn={:.2}",
                e.cycle,
                if e.fired { "FIRE " } else { "clear" },
                e.fast_burn,
                e.slow_burn
            )?;
        }
        Ok(())
    }
}

/// Collects (cycle, good) observations for one SLO and renders the
/// deterministic alert timeline on demand.
#[derive(Debug, Clone)]
pub struct BurnRateMonitor {
    spec: SloSpec,
    obs: Vec<(u64, bool)>,
}

impl BurnRateMonitor {
    /// A monitor for `spec`.
    ///
    /// # Panics
    /// If the spec is inconsistent (zero windows, slow not a multiple of
    /// fast, target outside `(0,1)`, clear ≥ fire).
    pub fn new(spec: SloSpec) -> Self {
        spec.validate();
        BurnRateMonitor {
            spec,
            obs: Vec::new(),
        }
    }

    /// The objective this monitor watches.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Record one event outcome at `cycle`.
    pub fn observe(&mut self, cycle: u64, good: bool) {
        self.obs.push((cycle, good));
    }

    /// Record a completion latency (good iff ≤ the spec threshold).
    pub fn observe_latency(&mut self, cycle: u64, total_cycles: u64) {
        self.observe(cycle, total_cycles <= self.spec.threshold_cycles);
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// Whether no events have been observed.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// The deterministic alert timeline: bucket observations onto the
    /// fast-window grid, then run the fire/clear state machine at every
    /// fast-window boundary through the last populated window.
    pub fn timeline(&self) -> AlertLog {
        let spec = &self.spec;
        let fast = spec.fast_window_cycles;
        let k = (spec.slow_window_cycles / fast) as usize;
        let mut events = Vec::new();
        let last_cycle = self.obs.iter().map(|(c, _)| *c).max();
        let Some(last_cycle) = last_cycle else {
            return AlertLog {
                slo: spec.name,
                events,
            };
        };
        // Per-fast-window (good, bad) tallies.
        let n_windows = (last_cycle / fast + 1) as usize;
        let mut buckets = vec![(0u64, 0u64); n_windows];
        for &(cycle, good) in &self.obs {
            let w = (cycle / fast) as usize;
            if good {
                buckets[w].0 += 1;
            } else {
                buckets[w].1 += 1;
            }
        }
        let mut firing = false;
        for w in 0..n_windows {
            let (fg, fb) = buckets[w];
            let lo = w.saturating_sub(k - 1);
            let (mut sg, mut sb) = (0u64, 0u64);
            for &(g, b) in &buckets[lo..=w] {
                sg += g;
                sb += b;
            }
            let fast_burn = burn_rate(fg, fb, spec.target);
            let slow_burn = burn_rate(sg, sb, spec.target);
            let boundary = (w as u64 + 1) * fast;
            if !firing
                && sg + sb >= spec.min_count
                && fast_burn >= spec.fire_burn
                && slow_burn >= spec.fire_burn
            {
                firing = true;
                events.push(AlertEvent {
                    cycle: boundary,
                    fired: true,
                    fast_burn,
                    slow_burn,
                });
            } else if firing && fast_burn < spec.clear_burn && slow_burn < spec.clear_burn {
                firing = false;
                events.push(AlertEvent {
                    cycle: boundary,
                    fired: false,
                    fast_burn,
                    slow_burn,
                });
            }
        }
        AlertLog {
            slo: spec.name,
            events,
        }
    }
}

/// Scalar reference for the property tests: recompute the timeline by
/// scanning the full observation list at every fast-window boundary
/// (O(windows × observations)), sharing nothing with
/// [`BurnRateMonitor::timeline`] beyond [`burn_rate`] itself.
pub fn reference_timeline(spec: &SloSpec, obs: &[(u64, bool)]) -> AlertLog {
    spec.validate();
    let fast = spec.fast_window_cycles;
    let slow = spec.slow_window_cycles;
    let mut events = Vec::new();
    let Some(last_cycle) = obs.iter().map(|(c, _)| *c).max() else {
        return AlertLog {
            slo: spec.name,
            events,
        };
    };
    let count_in = |from: u64, to: u64| -> (u64, u64) {
        let mut good = 0;
        let mut bad = 0;
        for &(c, g) in obs {
            if c >= from && c < to {
                if g {
                    good += 1;
                } else {
                    bad += 1;
                }
            }
        }
        (good, bad)
    };
    let mut firing = false;
    let mut boundary = fast;
    while boundary <= (last_cycle / fast + 1) * fast {
        let (fg, fb) = count_in(boundary - fast, boundary);
        let (sg, sb) = count_in(boundary.saturating_sub(slow), boundary);
        let fast_burn = burn_rate(fg, fb, spec.target);
        let slow_burn = burn_rate(sg, sb, spec.target);
        if !firing
            && sg + sb >= spec.min_count
            && fast_burn >= spec.fire_burn
            && slow_burn >= spec.fire_burn
        {
            firing = true;
            events.push(AlertEvent {
                cycle: boundary,
                fired: true,
                fast_burn,
                slow_burn,
            });
        } else if firing && fast_burn < spec.clear_burn && slow_burn < spec.clear_burn {
            firing = false;
            events.push(AlertEvent {
                cycle: boundary,
                fired: false,
                fast_burn,
                slow_burn,
            });
        }
        boundary += fast;
    }
    AlertLog {
        slo: spec.name,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec {
            name: "p-slo",
            threshold_cycles: 1_000,
            target: 0.9,
            fast_window_cycles: 100,
            slow_window_cycles: 400,
            fire_burn: 2.0,
            clear_burn: 1.0,
            min_count: 1,
        }
    }

    #[test]
    fn burn_rate_math() {
        assert_eq!(burn_rate(0, 0, 0.9), 0.0);
        // 50% bad against a 10% budget burns at 5x.
        assert!((burn_rate(5, 5, 0.9) - 5.0).abs() < 1e-12);
        // All good: zero burn.
        assert_eq!(burn_rate(10, 0, 0.9), 0.0);
    }

    #[test]
    fn fires_during_outage_and_clears_after() {
        let mut m = BurnRateMonitor::new(spec());
        // Healthy traffic, then a hard outage over [1000, 1800), then
        // healthy again.
        for c in (0..1_000).step_by(20) {
            m.observe(c, true);
        }
        for c in (1_000..1_800).step_by(20) {
            m.observe(c, false);
        }
        for c in (1_800..4_000).step_by(20) {
            m.observe(c, true);
        }
        let log = m.timeline();
        let fire = log.first_fire().expect("alert fired");
        let clear = log.last_clear().expect("alert cleared");
        assert!(fire > 1_000 && fire <= 1_800, "fired at {fire}");
        assert!(clear > 1_800, "cleared at {clear}");
        assert!(!log.firing_at_end());
        // Deterministic: identical log on recomputation.
        assert_eq!(log, m.timeline());
    }

    #[test]
    fn hysteresis_prevents_flapping_on_the_edge() {
        let mut s = spec();
        s.fire_burn = 5.0;
        s.clear_burn = 2.0;
        let mut m = BurnRateMonitor::new(s);
        // Alternate windows at burn 10 (all bad) / burn 2.5 (25% bad):
        // burn 2.5 sits between clear (2) and fire (5), so once fired
        // the alert must hold.
        for w in 0..8u64 {
            let base = w * 100;
            if w % 2 == 0 {
                for c in (base..base + 100).step_by(10) {
                    m.observe(c, false);
                }
            } else {
                for c in (base..base + 100).step_by(25) {
                    m.observe(c, c % 100 != 0);
                }
            }
        }
        let log = m.timeline();
        assert_eq!(log.events.iter().filter(|e| e.fired).count(), 1);
        assert!(log.firing_at_end());
    }

    #[test]
    fn matches_reference_on_a_mixed_trace() {
        let mut m = BurnRateMonitor::new(spec());
        let mut obs = Vec::new();
        let mut x = 9u64;
        for i in 0..500u64 {
            // Deterministic pseudo-random mix of cycles and outcomes.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cycle = i * 13 + (x % 7);
            let good = !x.is_multiple_of(5);
            m.observe(cycle, good);
            obs.push((cycle, good));
        }
        assert_eq!(m.timeline(), reference_timeline(&spec(), &obs));
    }

    #[test]
    fn empty_monitor_has_empty_timeline() {
        let m = BurnRateMonitor::new(spec());
        assert!(m.is_empty());
        let log = m.timeline();
        assert!(log.events.is_empty());
        assert_eq!(log.first_fire(), None);
        assert_eq!(log.last_clear(), None);
        assert_eq!(log, reference_timeline(&spec(), &[]));
    }

    #[test]
    fn observe_latency_uses_the_threshold() {
        let mut m = BurnRateMonitor::new(spec());
        m.observe_latency(10, 999);
        m.observe_latency(20, 1_001);
        assert_eq!(m.len(), 2);
        assert_eq!(m.timeline(), {
            let s = spec();
            reference_timeline(&s, &[(10, true), (20, false)])
        });
    }

    #[test]
    fn alert_log_json_and_display_are_stable() {
        let log = AlertLog {
            slo: "p-slo",
            events: vec![
                AlertEvent {
                    cycle: 400,
                    fired: true,
                    fast_burn: 8.0,
                    slow_burn: 3.5,
                },
                AlertEvent {
                    cycle: 900,
                    fired: false,
                    fast_burn: 0.0,
                    slow_burn: 0.5,
                },
            ],
        };
        let j = log.to_json();
        assert!(j.contains("\"slo\": \"p-slo\""));
        assert!(j.contains("\"state\": \"fire\""));
        assert!(j.contains("\"state\": \"clear\""));
        assert_eq!(j, log.clone().to_json());
        let t = log.to_string();
        assert!(t.contains("FIRE") && t.contains("clear"));
    }
}
