//! ANSMET observability: cross-stack tracing and metrics.
//!
//! The simulator's layers (ET planning, NDP waves, the DDR5 model, host
//! recovery, the serving tier) report into this crate through one seam —
//! the [`TraceSink`] trait. The default [`NoopSink`] compiles to
//! nothing, so instrumented hot paths stay allocation-free and
//! bit-identical to uninstrumented output; an enabled [`QueryRecorder`]
//! captures per-query spans/events (ring-buffered, retention-capped)
//! plus a private [`MetricsRegistry`] shard, and shards merge in query
//! order exactly like `sim`'s replay stats, so recordings are
//! bit-identical across reruns and thread counts.
//!
//! Exporters: [`perfetto_trace_json`] renders the slowest queries as a
//! Chrome/Perfetto-loadable trace (cycles mapped to microseconds);
//! [`attribution_table`] renders the per-phase cycle breakdown, whose
//! columns tile each query's end-to-end latency exactly
//! ([`attribution_check`]).

mod attribution;
mod forensics;
mod histogram;
mod metrics;
mod ops;
mod perfetto;
mod recorder;
mod sink;
mod slo;
mod taxonomy;
mod timeseries;

pub use attribution::{attribution_check, attribution_table};
pub use forensics::{ForensicCause, ForensicDigest, ForensicEvidence};
pub use histogram::LatencyHistogram;
pub use metrics::{json_f64, json_string, prometheus_exposition, Metric, MetricsRegistry};
pub use ops::{OpsConfig, OpsPlane, OpsReport};
pub use perfetto::perfetto_trace_json;
pub use recorder::{
    EventRecord, FlightRecorder, QueryRecorder, QueryTrace, RecorderConfig, SpanRecord,
};
pub use sink::{NoopSink, TraceSink};
pub use slo::{burn_rate, reference_timeline, AlertEvent, AlertLog, BurnRateMonitor, SloSpec};
pub use taxonomy::{DramCommandKind, EventKind, Phase};
pub use timeseries::{TimeSeries, WindowCell};

/// Streaming FNV-1a accumulator.
///
/// One mixing step per [`write_u64`](Fnv64::write_u64): XOR the word in,
/// multiply by the FNV prime. [`fingerprint64`] (byte streams) and the
/// serving tier's results fingerprint (word streams) are both this same
/// hash, so every fingerprint in the repo shares one implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x100_0000_01b3;

    /// A fresh accumulator at the offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Mix one word: `h = (h ^ v) * PRIME`.
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    /// Mix a byte stream, one mixing step per byte (classic FNV-1a).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over `bytes` — the same cheap stable hash the serving tier
/// uses for result fingerprints, exposed here for config fingerprinting.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = fingerprint64(b"config-a");
        assert_eq!(a, fingerprint64(b"config-a"));
        assert_ne!(a, fingerprint64(b"config-b"));
        assert_eq!(fingerprint64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fnv64_streaming_matches_fingerprint64() {
        let mut h = Fnv64::new();
        h.write_bytes(b"config-a");
        assert_eq!(h.finish(), fingerprint64(b"config-a"));
        assert_eq!(Fnv64::default().finish(), Fnv64::OFFSET);
    }

    #[test]
    fn fnv64_word_mix_is_one_step() {
        // One write_u64 must be exactly the serving tier's historical
        // `mix` closure: h ^= v; h *= PRIME.
        let mut h = Fnv64::new();
        h.write_u64(42);
        assert_eq!(h.finish(), (Fnv64::OFFSET ^ 42).wrapping_mul(Fnv64::PRIME));
    }
}
