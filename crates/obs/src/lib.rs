//! ANSMET observability: cross-stack tracing and metrics.
//!
//! The simulator's layers (ET planning, NDP waves, the DDR5 model, host
//! recovery, the serving tier) report into this crate through one seam —
//! the [`TraceSink`] trait. The default [`NoopSink`] compiles to
//! nothing, so instrumented hot paths stay allocation-free and
//! bit-identical to uninstrumented output; an enabled [`QueryRecorder`]
//! captures per-query spans/events (ring-buffered, retention-capped)
//! plus a private [`MetricsRegistry`] shard, and shards merge in query
//! order exactly like `sim`'s replay stats, so recordings are
//! bit-identical across reruns and thread counts.
//!
//! Exporters: [`perfetto_trace_json`] renders the slowest queries as a
//! Chrome/Perfetto-loadable trace (cycles mapped to microseconds);
//! [`attribution_table`] renders the per-phase cycle breakdown, whose
//! columns tile each query's end-to-end latency exactly
//! ([`attribution_check`]).

mod attribution;
mod histogram;
mod metrics;
mod perfetto;
mod recorder;
mod sink;
mod taxonomy;

pub use attribution::{attribution_check, attribution_table};
pub use histogram::LatencyHistogram;
pub use metrics::{json_f64, json_string, Metric, MetricsRegistry};
pub use perfetto::perfetto_trace_json;
pub use recorder::{
    EventRecord, FlightRecorder, QueryRecorder, QueryTrace, RecorderConfig, SpanRecord,
};
pub use sink::{NoopSink, TraceSink};
pub use taxonomy::{DramCommandKind, EventKind, Phase};

/// FNV-1a over `bytes` — the same cheap stable hash the serving tier
/// uses for result fingerprints, exposed here for config fingerprinting.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = fingerprint64(b"config-a");
        assert_eq!(a, fingerprint64(b"config-a"));
        assert_ne!(a, fingerprint64(b"config-b"));
        assert_eq!(fingerprint64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
