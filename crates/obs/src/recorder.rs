//! Per-query flight recorder.
//!
//! One [`QueryRecorder`] rides along with one query's replay: spans and
//! events land in pre-sized buffers (events in a bounded ring — the
//! retention knob — so a pathological query cannot blow up memory), and
//! metric samples land in the recorder's private [`MetricsRegistry`]
//! shard. When the query finishes, the recorder freezes into a
//! [`QueryTrace`]; traces and shards are folded into a
//! [`FlightRecorder`] in query order, mirroring `sim`'s deterministic
//! merge so the whole recording is bit-identical across thread counts.

use std::collections::VecDeque;

use crate::metrics::MetricsRegistry;
use crate::sink::TraceSink;
use crate::taxonomy::{EventKind, Phase};

/// A recorded span: `phase` occupied `[start, end)` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    pub phase: Phase,
    pub start: u64,
    pub end: u64,
}

/// A recorded point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    pub cycle: u64,
    pub kind: EventKind,
}

/// Retention knobs for one query's recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity for point events; the oldest are dropped first
    /// (and counted) once full.
    pub max_events: usize,
    /// Hard cap on spans; spans past the cap are dropped (and counted).
    pub max_spans: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            max_events: 4096,
            max_spans: 16384,
        }
    }
}

/// Live recording state for one query (implements [`TraceSink`]).
#[derive(Debug, Clone)]
pub struct QueryRecorder {
    query: usize,
    cfg: RecorderConfig,
    spans: Vec<SpanRecord>,
    events: VecDeque<EventRecord>,
    dropped_events: u64,
    dropped_spans: u64,
    metrics: MetricsRegistry,
}

impl QueryRecorder {
    /// A fresh recorder for query index `query`.
    pub fn new(query: usize, cfg: RecorderConfig) -> Self {
        QueryRecorder {
            query,
            cfg,
            spans: Vec::new(),
            events: VecDeque::new(),
            dropped_events: 0,
            dropped_spans: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Freeze into an immutable trace; `total_cycles` is the query's
    /// end-to-end simulated latency.
    pub fn finish(self, total_cycles: u64) -> QueryTrace {
        QueryTrace {
            query: self.query,
            total_cycles,
            spans: self.spans,
            events: self.events.into_iter().collect(),
            dropped_events: self.dropped_events,
            dropped_spans: self.dropped_spans,
            metrics: self.metrics,
        }
    }
}

impl TraceSink for QueryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, phase: Phase, start: u64, end: u64) {
        if self.spans.len() >= self.cfg.max_spans {
            self.dropped_spans += 1;
            return;
        }
        self.spans.push(SpanRecord { phase, start, end });
    }

    fn event(&mut self, cycle: u64, kind: EventKind) {
        if self.cfg.max_events == 0 {
            self.dropped_events += 1;
            return;
        }
        if self.events.len() >= self.cfg.max_events {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(EventRecord { cycle, kind });
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_max(&mut self, name: &'static str, value: u64) {
        self.metrics.gauge_max(name, value);
    }

    fn record(&mut self, name: &'static str, value: u64) {
        self.metrics.record(name, value);
    }
}

/// One query's frozen recording.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Query index within the workload.
    pub query: usize,
    /// End-to-end simulated cycles.
    pub total_cycles: u64,
    /// Recorded spans, in recording order.
    pub spans: Vec<SpanRecord>,
    /// Recorded events (oldest may have been dropped by the ring).
    pub events: Vec<EventRecord>,
    /// Events dropped by the retention ring.
    pub dropped_events: u64,
    /// Spans dropped past the cap.
    pub dropped_spans: u64,
    /// This query's private metrics shard.
    pub metrics: MetricsRegistry,
}

impl QueryTrace {
    /// Cycles attributed to each phase (indexed like [`Phase::ALL`]).
    pub fn phase_cycles(&self) -> [u64; Phase::ALL.len()] {
        let mut out = [0u64; Phase::ALL.len()];
        for s in &self.spans {
            out[s.phase.index()] += s.end - s.start;
        }
        out
    }

    /// Sum of all span durations. The replay core emits spans that tile
    /// the query's life exactly, so this equals [`total_cycles`].
    ///
    /// [`total_cycles`]: QueryTrace::total_cycles
    pub fn attributed_cycles(&self) -> u64 {
        self.phase_cycles().iter().sum()
    }
}

/// The run-wide recording: per-query traces plus the merged registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecorder {
    /// Per-query traces, in query order.
    pub queries: Vec<QueryTrace>,
    /// All per-query shards merged, in query order.
    pub metrics: MetricsRegistry,
}

impl std::fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query {}: {} cycles, {} spans, {} events",
            self.query,
            self.total_cycles,
            self.spans.len(),
            self.events.len()
        )?;
        if self.dropped_spans + self.dropped_events > 0 {
            write!(
                f,
                " ({} spans / {} events dropped by retention caps)",
                self.dropped_spans, self.dropped_events
            )?;
        }
        Ok(())
    }
}

impl FlightRecorder {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one finished query trace, folding its metrics shard into
    /// the run-wide registry. Call in query order for determinism.
    pub fn push(&mut self, trace: QueryTrace) {
        self.metrics.merge(&trace.metrics);
        self.queries.push(trace);
    }

    /// The `n` slowest queries by total cycles (ties broken by query
    /// index, so the selection is deterministic).
    pub fn slowest(&self, n: usize) -> Vec<&QueryTrace> {
        let mut refs: Vec<&QueryTrace> = self.queries.iter().collect();
        refs.sort_by(|a, b| {
            b.total_cycles
                .cmp(&a.total_cycles)
                .then(a.query.cmp(&b.query))
        });
        refs.truncate(n);
        refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_captures_and_freezes() {
        let mut r = QueryRecorder::new(3, RecorderConfig::default());
        r.span(Phase::Traversal, 0, 100);
        r.span(Phase::DistComp, 100, 400);
        r.event(50, EventKind::EtResumed);
        r.counter("lines", 7);
        let t = r.finish(400);
        assert_eq!(t.query, 3);
        assert_eq!(t.attributed_cycles(), 400);
        assert_eq!(t.phase_cycles()[Phase::DistComp.index()], 300);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.metrics.counter("lines"), 7);
    }

    #[test]
    fn event_ring_drops_oldest() {
        let cfg = RecorderConfig {
            max_events: 2,
            max_spans: 8,
        };
        let mut r = QueryRecorder::new(0, cfg);
        for c in 0..5u64 {
            r.event(c, EventKind::BatchFormed { size: c as u32 });
        }
        let t = r.finish(5);
        assert_eq!(t.dropped_events, 3);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].cycle, 3);
        assert_eq!(t.events[1].cycle, 4);
    }

    #[test]
    fn span_cap_counts_drops() {
        let cfg = RecorderConfig {
            max_events: 8,
            max_spans: 1,
        };
        let mut r = QueryRecorder::new(0, cfg);
        r.span(Phase::Queue, 0, 1);
        r.span(Phase::Execute, 1, 2);
        let t = r.finish(2);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.dropped_spans, 1);
    }

    #[test]
    fn flight_recorder_merges_and_ranks() {
        let mut fr = FlightRecorder::new();
        for (qi, cycles) in [(0usize, 50u64), (1, 200), (2, 200), (3, 10)] {
            let mut r = QueryRecorder::new(qi, RecorderConfig::default());
            r.counter("n", 1);
            fr.push(r.finish(cycles));
        }
        assert_eq!(fr.metrics.counter("n"), 4);
        let slow = fr.slowest(3);
        let order: Vec<usize> = slow.iter().map(|t| t.query).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
