//! Chrome/Perfetto trace export.
//!
//! Emits the legacy Trace Event JSON format (`{"traceEvents": [...]}`),
//! which both `chrome://tracing` and [ui.perfetto.dev] load directly.
//! Each exported query becomes one named "thread" (tid = query index);
//! spans become complete events (`ph: "X"`) and point events become
//! instants (`ph: "i"`). Timestamps are microseconds: simulated cycles
//! divided by the memory clock in MHz, rendered at fixed precision so
//! the export is byte-stable.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::metrics::{json_f64, json_string};
use crate::recorder::QueryTrace;

/// One process id for the whole run.
const PID: u64 = 1;

fn ts_us(cycles: u64, mem_clock_mhz: u64) -> String {
    json_f64(cycles as f64 / mem_clock_mhz.max(1) as f64)
}

/// Render `traces` (typically [`FlightRecorder::slowest`]) as a Trace
/// Event JSON document. Queries appear top-to-bottom in the order given.
///
/// [`FlightRecorder::slowest`]: crate::FlightRecorder::slowest
pub fn perfetto_trace_json(traces: &[&QueryTrace], mem_clock_mhz: u64) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"ph\": \"M\", \"pid\": {PID}, \"name\": \"process_name\", \
         \"args\": {{\"name\": \"ansmet replay ({mem_clock_mhz} MHz mem clock)\"}}}}"
    ));
    for (pos, t) in traces.iter().enumerate() {
        let tid = t.query as u64 + 1; // tid 0 renders oddly in some UIs
        events.push(format!(
            "{{\"ph\": \"M\", \"pid\": {PID}, \"tid\": {tid}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": {}}}}}",
            json_string(&format!("query {} ({} cycles)", t.query, t.total_cycles))
        ));
        events.push(format!(
            "{{\"ph\": \"M\", \"pid\": {PID}, \"tid\": {tid}, \
             \"name\": \"thread_sort_index\", \"args\": {{\"sort_index\": {pos}}}}}"
        ));
        for s in &t.spans {
            events.push(format!(
                "{{\"ph\": \"X\", \"pid\": {PID}, \"tid\": {tid}, \"cat\": \"phase\", \
                 \"name\": {}, \"ts\": {}, \"dur\": {}, \
                 \"args\": {{\"start_cycle\": {}, \"cycles\": {}}}}}",
                json_string(s.phase.as_str()),
                ts_us(s.start, mem_clock_mhz),
                ts_us(s.end - s.start, mem_clock_mhz),
                s.start,
                s.end - s.start,
            ));
        }
        for e in &t.events {
            events.push(format!(
                "{{\"ph\": \"i\", \"pid\": {PID}, \"tid\": {tid}, \"s\": \"t\", \
                 \"cat\": \"event\", \"name\": {}, \"ts\": {}, \
                 \"args\": {{\"cycle\": {}, \"detail\": {}}}}}",
                json_string(e.kind.name()),
                ts_us(e.cycle, mem_clock_mhz),
                e.cycle,
                json_string(&e.kind.to_string()),
            ));
        }
    }
    let mut out = String::from("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{QueryRecorder, RecorderConfig};
    use crate::sink::TraceSink;
    use crate::taxonomy::{EventKind, Phase};

    fn sample_trace() -> QueryTrace {
        let mut r = QueryRecorder::new(2, RecorderConfig::default());
        r.span(Phase::Traversal, 0, 120);
        r.span(Phase::DistComp, 120, 2400);
        r.event(130, EventKind::GroupFetch { rank: 4, lines: 3 });
        r.finish(2400)
    }

    #[test]
    fn exports_spans_and_instants() {
        let t = sample_trace();
        let j = perfetto_trace_json(&[&t], 2400);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"ph\": \"i\""));
        assert!(j.contains("\"name\": \"dist_comp\""));
        assert!(j.contains("group_fetch"));
        // 2400 cycles at 2400 MHz = 1 µs.
        assert!(j.contains("\"dur\": 0.9500"), "{j}");
    }

    #[test]
    fn export_is_deterministic() {
        let t = sample_trace();
        assert_eq!(
            perfetto_trace_json(&[&t], 2400),
            perfetto_trace_json(&[&t], 2400)
        );
    }

    #[test]
    fn balanced_braces_and_brackets() {
        let t = sample_trace();
        let j = perfetto_trace_json(&[&t], 2400);
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
