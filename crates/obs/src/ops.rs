//! The streaming operations plane: one [`TraceSink`] that turns the
//! serving tier's span/event/record stream into windowed time series,
//! SLO burn-rate alert timelines, and automated tail forensics.
//!
//! Wiring protocol (what `serve`'s engine and `freshness`'s churn loop
//! emit per completed query, in order):
//!
//! 1. `event(completion, QueryComplete { query, tenant })` — arms the
//!    per-query assembly;
//! 2. the query's `Queue` / `Execute` / `Recovery` spans (zero-length
//!    spans omitted);
//! 3. `record("*.queue_cycles")`, `record("*.exec_cycles")`,
//!    `record("*.total_cycles")` — the total record finalizes the query.
//!
//! Fleet events (sheds, breaker transitions, hedges, retries,
//! row-buffer deltas, compaction pauses, brownout levels) arrive
//! interleaved and are folded into the time series immediately; a copy
//! is kept so the forensic classifier can later walk each breaching
//! query's `[arrival, completion)` window. The plane only *observes*:
//! it implements [`TraceSink`] and never feeds anything back, so traced
//! runs stay bit-identical to untraced ones.

use std::fmt;

use crate::forensics::{classify, ForensicDigest, ForensicEvidence};
use crate::metrics::{prometheus_exposition, MetricsRegistry};
use crate::sink::TraceSink;
use crate::slo::{AlertLog, BurnRateMonitor, SloSpec};
use crate::taxonomy::{EventKind, Phase};
use crate::timeseries::TimeSeries;

/// Configuration of an [`OpsPlane`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpsConfig {
    /// Fixed aggregation window width (serving cycles).
    pub window_cycles: u64,
    /// SLO objectives to monitor.
    pub slos: Vec<SloSpec>,
    /// Auto-arm forensics for completions at or above this latency
    /// (cycles). `u64::MAX` disables forensics.
    pub tail_threshold_cycles: u64,
    /// At most this many forensic digests are kept (in completion
    /// order); the rest are counted as dropped.
    pub max_digests: usize,
}

impl Default for OpsConfig {
    fn default() -> Self {
        OpsConfig {
            window_cycles: 100_000,
            slos: Vec::new(),
            tail_threshold_cycles: u64::MAX,
            max_digests: 64,
        }
    }
}

/// A query mid-assembly (QueryComplete seen, total record pending).
#[derive(Debug, Clone, Copy)]
struct Pending {
    query: u32,
    tenant: u32,
    completion: u64,
    queue: u64,
    recovery: u64,
}

/// A breaching query parked for end-of-run classification.
#[derive(Debug, Clone, Copy)]
struct TailRecord {
    query: u32,
    tenant: u32,
    arrival: u64,
    completion: u64,
    total: u64,
    queue: u64,
    execute: u64,
    recovery: u64,
}

/// The streaming ops plane. Feed it to `run_serve_with_sink` /
/// `run_churn_with_sink`, then call [`OpsPlane::finish`].
#[derive(Debug, Clone)]
pub struct OpsPlane {
    cfg: OpsConfig,
    series: TimeSeries,
    monitors: Vec<BurnRateMonitor>,
    registry: MetricsRegistry,
    /// Fleet events in arrival order (cycles nondecreasing by
    /// construction of the serial serving loop).
    fleet: Vec<(u64, EventKind)>,
    /// Breaker open/close transitions: (cycle, open-group count).
    breaker_timeline: Vec<(u64, u64)>,
    open_groups: Vec<u32>,
    /// Brownout level transitions: (cycle, level).
    brownout_timeline: Vec<(u64, u64)>,
    /// Maintenance pauses: (start_cycle, pause_cycles).
    pauses: Vec<(u64, u64)>,
    pending: Option<Pending>,
    tails: Vec<TailRecord>,
    completed: u64,
    dropped_digests: u64,
}

impl OpsPlane {
    /// A plane with the given config; one burn-rate monitor per SLO.
    pub fn new(cfg: OpsConfig) -> Self {
        let monitors = cfg.slos.iter().cloned().map(BurnRateMonitor::new).collect();
        let series = TimeSeries::new(cfg.window_cycles);
        OpsPlane {
            cfg,
            series,
            monitors,
            registry: MetricsRegistry::new(),
            fleet: Vec::new(),
            breaker_timeline: Vec::new(),
            open_groups: Vec::new(),
            brownout_timeline: Vec::new(),
            pauses: Vec::new(),
            pending: None,
            tails: Vec::new(),
            completed: 0,
            dropped_digests: 0,
        }
    }

    /// Completions finalized so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn fold_event(&mut self, cycle: u64, kind: EventKind) {
        match kind {
            EventKind::Shed { deadline } => {
                self.series.counter_add("ops.shed", cycle, 1);
                if deadline {
                    self.series.counter_add("ops.shed_deadline", cycle, 1);
                }
                // A shed is an SLO violation for every objective.
                for m in &mut self.monitors {
                    m.observe(cycle, false);
                }
            }
            EventKind::BatchFormed { size } => {
                self.series.counter_add("ops.batches", cycle, 1);
                self.series.record("ops.batch_size", cycle, size as u64);
            }
            EventKind::RecoveryRetry { .. } => {
                self.series.counter_add("ops.retries", cycle, 1);
            }
            EventKind::CrcRejected { .. } => {
                self.series.counter_add("ops.crc_rejected", cycle, 1);
            }
            EventKind::HostFallback { .. } => {
                self.series.counter_add("ops.host_fallbacks", cycle, 1);
            }
            EventKind::BreakerOpen { group } => {
                self.series.counter_add("ops.breaker_opens", cycle, 1);
                if !self.open_groups.contains(&group) {
                    self.open_groups.push(group);
                }
                let n = self.open_groups.len() as u64;
                self.breaker_timeline.push((cycle, n));
                self.series.gauge_max("ops.breakers_open", cycle, n);
            }
            EventKind::BreakerHalfOpen { .. } => {
                self.series.counter_add("ops.breaker_half_opens", cycle, 1);
            }
            EventKind::BreakerClose { group } => {
                self.series.counter_add("ops.breaker_closes", cycle, 1);
                self.open_groups.retain(|g| *g != group);
                let n = self.open_groups.len() as u64;
                self.breaker_timeline.push((cycle, n));
            }
            EventKind::HedgeIssued { .. } => {
                self.series.counter_add("ops.hedges_issued", cycle, 1);
            }
            EventKind::HedgeWin { .. } => {
                self.series.counter_add("ops.hedge_wins", cycle, 1);
            }
            EventKind::Brownout { level } => {
                self.brownout_timeline.push((cycle, level as u64));
                self.series
                    .gauge_max("ops.brownout_level", cycle, level as u64);
            }
            EventKind::RowBuffer {
                hits,
                misses,
                conflicts,
            } => {
                self.series.counter_add("ops.row_hits", cycle, hits as u64);
                self.series
                    .counter_add("ops.row_misses", cycle, misses as u64);
                self.series
                    .counter_add("ops.row_conflicts", cycle, conflicts as u64);
            }
            EventKind::CompactionPause { cycles, .. } => {
                self.series.counter_add("ops.compaction_pauses", cycle, 1);
                self.series
                    .counter_add("ops.compaction_pause_cycles", cycle, cycles as u64);
                self.pauses.push((cycle, cycles as u64));
            }
            EventKind::ShardSkipped { .. } => {
                self.series.counter_add("ops.shards_skipped", cycle, 1);
            }
            EventKind::ShardFailover { .. } => {
                self.series.counter_add("ops.shard_failovers", cycle, 1);
            }
            EventKind::BoundPropagated { saved_lines, .. } => {
                self.series.counter_add("ops.bound_propagations", cycle, 1);
                self.series
                    .counter_add("ops.bound_saved_lines", cycle, saved_lines as u64);
            }
            _ => {}
        }
    }

    fn finalize(&mut self, total: u64) {
        let Some(p) = self.pending.take() else {
            return;
        };
        let completion = p.completion;
        let arrival = completion.saturating_sub(total);
        self.completed += 1;
        self.series.counter_add("ops.completed", completion, 1);
        self.series.record("ops.total_cycles", completion, total);
        for m in &mut self.monitors {
            m.observe(completion, total <= m.spec().threshold_cycles);
        }
        if total >= self.cfg.tail_threshold_cycles {
            let execute = total.saturating_sub(p.queue + p.recovery);
            self.tails.push(TailRecord {
                query: p.query,
                tenant: p.tenant,
                arrival,
                completion,
                total,
                queue: p.queue,
                execute,
                recovery: p.recovery,
            });
        }
    }

    /// Last value of a `(cycle, value)` step timeline at or before
    /// `cycle` (0 before the first transition).
    fn step_value_at(timeline: &[(u64, u64)], cycle: u64) -> u64 {
        let idx = timeline.partition_point(|(c, _)| *c <= cycle);
        if idx == 0 {
            0
        } else {
            timeline[idx - 1].1
        }
    }

    fn gather_evidence(&self, t: &TailRecord) -> ForensicEvidence {
        let mut ev = ForensicEvidence::default();
        let from = t.arrival;
        let to = t.completion;
        for &(cycle, kind) in &self.fleet {
            if cycle < from || cycle >= to {
                continue;
            }
            match kind {
                EventKind::RecoveryRetry { .. } => ev.retries += 1,
                EventKind::CrcRejected { .. } => ev.crc_rejected += 1,
                EventKind::HostFallback { .. } => ev.host_fallbacks += 1,
                EventKind::HedgeIssued { .. } => ev.hedges_issued += 1,
                EventKind::HedgeWin { .. } => ev.hedge_wins += 1,
                EventKind::RowBuffer {
                    hits,
                    misses,
                    conflicts,
                } => {
                    ev.row_hits += hits as u64;
                    ev.row_misses += misses as u64;
                    ev.row_conflicts += conflicts as u64;
                }
                _ => {}
            }
        }
        let dispatch = t.arrival + t.queue;
        ev.breakers_open_at_dispatch = Self::step_value_at(&self.breaker_timeline, dispatch);
        ev.brownout_level_at_dispatch = Self::step_value_at(&self.brownout_timeline, dispatch);
        for &(start, cycles) in &self.pauses {
            let end = start.saturating_add(cycles);
            let lo = start.max(from);
            let hi = end.min(to);
            if hi > lo {
                ev.pause_overlap_cycles += hi - lo;
            }
        }
        ev
    }

    /// Close the plane: classify every armed tail breach against the
    /// fleet event log and render the alert timelines.
    pub fn finish(mut self) -> OpsReport {
        // Cycles are nondecreasing from the serial serving loop, but the
        // classifier's correctness only needs *sorted*; make it so
        // explicitly (stable, so equal-cycle events keep emission order).
        self.fleet.sort_by_key(|(c, _)| *c);
        let keep = self.tails.len().min(self.cfg.max_digests);
        self.dropped_digests += (self.tails.len() - keep) as u64;
        let digests = self.tails[..keep]
            .iter()
            .map(|t| {
                let evidence = self.gather_evidence(t);
                let cause = classify(t.queue, t.execute, t.recovery, &evidence);
                ForensicDigest {
                    query: t.query,
                    tenant: t.tenant,
                    arrival_cycle: t.arrival,
                    completion_cycle: t.completion,
                    total_cycles: t.total,
                    queue_cycles: t.queue,
                    execute_cycles: t.execute,
                    recovery_cycles: t.recovery,
                    threshold_cycles: self.cfg.tail_threshold_cycles,
                    cause,
                    evidence,
                }
            })
            .collect();
        let alerts = self.monitors.iter().map(|m| m.timeline()).collect();
        OpsReport {
            tail_threshold_cycles: self.cfg.tail_threshold_cycles,
            series: self.series,
            alerts,
            digests,
            registry: self.registry,
            completed: self.completed,
            dropped_digests: self.dropped_digests,
        }
    }
}

impl TraceSink for OpsPlane {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, phase: Phase, start: u64, end: u64) {
        let len = end.saturating_sub(start);
        if let Some(p) = &mut self.pending {
            match phase {
                Phase::Queue => p.queue = len,
                Phase::Recovery => p.recovery = len,
                _ => {}
            }
        }
    }

    fn event(&mut self, cycle: u64, kind: EventKind) {
        if let EventKind::QueryComplete { query, tenant } = kind {
            self.pending = Some(Pending {
                query,
                tenant,
                completion: cycle,
                queue: 0,
                recovery: 0,
            });
        } else {
            self.fleet.push((cycle, kind));
            self.fold_event(cycle, kind);
        }
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.registry.counter_add(name, delta);
    }

    fn gauge_max(&mut self, name: &'static str, value: u64) {
        self.registry.gauge_max(name, value);
    }

    fn record(&mut self, name: &'static str, value: u64) {
        self.registry.record(name, value);
        if self.pending.is_some() {
            if name.ends_with("queue_cycles") {
                if let Some(p) = &mut self.pending {
                    p.queue = value;
                }
            } else if name.ends_with("total_cycles") {
                self.finalize(value);
            }
        }
    }

    fn sample(&mut self, cycle: u64, name: &'static str, value: u64) {
        self.series.gauge_max(name, cycle, value);
        self.registry.gauge_max(name, value);
    }
}

/// Everything the ops plane distilled from one run.
#[derive(Debug, Clone)]
pub struct OpsReport {
    /// The armed tail threshold (cycles).
    pub tail_threshold_cycles: u64,
    /// Windowed time series of every folded metric.
    pub series: TimeSeries,
    /// One alert timeline per configured SLO.
    pub alerts: Vec<AlertLog>,
    /// Forensic digests of tail breaches, in completion order.
    pub digests: Vec<ForensicDigest>,
    /// Run-total metrics (counters/gauges/histograms) for exposition.
    pub registry: MetricsRegistry,
    /// Completions observed.
    pub completed: u64,
    /// Breaches beyond `max_digests` that were counted but not kept.
    pub dropped_digests: u64,
}

impl OpsReport {
    /// Whether every digest carries a non-`unknown` attributed cause.
    pub fn all_digests_attributed(&self) -> bool {
        self.digests
            .iter()
            .all(|d| d.cause != crate::forensics::ForensicCause::Unknown)
    }

    /// Prometheus text exposition of the run-total metrics.
    pub fn exposition(&self) -> String {
        prometheus_exposition(&self.registry)
    }

    /// Deterministic JSON body: time series, alert logs, digests, and
    /// run totals.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"completed\": {},\n  \"tail_threshold_cycles\": {},\n  \"dropped_digests\": {},\n",
            self.completed, self.tail_threshold_cycles, self.dropped_digests
        ));
        s.push_str("  \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&a.to_json());
        }
        s.push_str("],\n  \"digests\": [");
        for (i, d) in self.digests.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&d.to_json());
        }
        s.push_str("],\n  \"timeseries\": ");
        s.push_str(&indent_tail(&self.series.to_json(), "  "));
        s.push_str(",\n  \"totals\": ");
        s.push_str(&indent_tail(&self.registry.to_json(), "  "));
        s.push_str("\n}");
        s
    }
}

impl fmt::Display for OpsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ops plane: {} completions, {} digests ({} dropped), threshold {} cycles",
            self.completed,
            self.digests.len(),
            self.dropped_digests,
            self.tail_threshold_cycles
        )?;
        for a in &self.alerts {
            write!(f, "{a}")?;
        }
        for d in &self.digests {
            writeln!(f, "  {d}")?;
        }
        write!(f, "{}", self.series)
    }
}

/// Re-indent every line after the first by `pad` so a nested JSON
/// object lines up inside its parent.
fn indent_tail(json: &str, pad: &str) -> String {
    let mut out = String::with_capacity(json.len());
    for (i, line) in json.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(pad);
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo() -> SloSpec {
        SloSpec {
            name: "lat",
            threshold_cycles: 1_000,
            target: 0.9,
            fast_window_cycles: 1_000,
            slow_window_cycles: 4_000,
            fire_burn: 2.0,
            clear_burn: 1.0,
            min_count: 1,
        }
    }

    fn complete_query(plane: &mut OpsPlane, query: u32, arrival: u64, queue: u64, total: u64) {
        let completion = arrival + total;
        let dispatch = arrival + queue;
        plane.event(completion, EventKind::QueryComplete { query, tenant: 0 });
        if queue > 0 {
            plane.span(Phase::Queue, arrival, dispatch);
        }
        plane.span(Phase::Execute, dispatch, completion);
        plane.record("serve.queue_cycles", queue);
        plane.record("serve.exec_cycles", total - queue);
        plane.record("serve.total_cycles", total);
    }

    #[test]
    fn assembles_completions_into_series_and_monitors() {
        let mut plane = OpsPlane::new(OpsConfig {
            window_cycles: 1_000,
            slos: vec![slo()],
            tail_threshold_cycles: u64::MAX,
            max_digests: 8,
        });
        complete_query(&mut plane, 0, 0, 10, 500);
        complete_query(&mut plane, 1, 1_500, 0, 2_000);
        let report = plane.finish();
        assert_eq!(report.completed, 2);
        assert_eq!(report.series.counter_total("ops.completed"), 2);
        assert!(report.digests.is_empty());
        assert_eq!(report.alerts.len(), 1);
    }

    #[test]
    fn breaches_arm_digests_with_causes() {
        let mut plane = OpsPlane::new(OpsConfig {
            window_cycles: 1_000,
            slos: vec![],
            tail_threshold_cycles: 2_000,
            max_digests: 8,
        });
        // Fast query: no digest.
        complete_query(&mut plane, 0, 0, 10, 500);
        // Queue-dominated breach under a compaction pause.
        plane.event(
            5_000,
            EventKind::CompactionPause {
                epoch: 0,
                cycles: 3_000,
            },
        );
        complete_query(&mut plane, 1, 5_000, 3_500, 4_000);
        let report = plane.finish();
        assert_eq!(report.digests.len(), 1);
        let d = &report.digests[0];
        assert_eq!(d.query, 1);
        assert_eq!(d.queue_cycles, 3_500);
        assert!(d.evidence.pause_overlap_cycles > 0);
        assert_eq!(
            d.cause,
            crate::forensics::ForensicCause::CompactionPauseOverlap
        );
        assert!(report.all_digests_attributed());
    }

    #[test]
    fn digest_cap_counts_drops() {
        let mut plane = OpsPlane::new(OpsConfig {
            window_cycles: 1_000,
            slos: vec![],
            tail_threshold_cycles: 1,
            max_digests: 1,
        });
        complete_query(&mut plane, 0, 0, 0, 100);
        complete_query(&mut plane, 1, 200, 0, 100);
        let report = plane.finish();
        assert_eq!(report.digests.len(), 1);
        assert_eq!(report.dropped_digests, 1);
    }

    #[test]
    fn breaker_and_brownout_state_is_dispatch_time() {
        let mut plane = OpsPlane::new(OpsConfig {
            window_cycles: 1_000,
            slos: vec![],
            tail_threshold_cycles: 100,
            max_digests: 8,
        });
        plane.event(50, EventKind::BreakerOpen { group: 3 });
        plane.event(60, EventKind::Brownout { level: 2 });
        // Dispatch at 100 (inside open window), completion 10_100.
        complete_query(&mut plane, 0, 0, 100, 10_100);
        plane.event(20_000, EventKind::BreakerClose { group: 3 });
        // Dispatch at 30_000: breaker closed again.
        complete_query(&mut plane, 1, 29_000, 1_000, 10_000);
        let report = plane.finish();
        assert_eq!(report.digests.len(), 2);
        assert_eq!(report.digests[0].evidence.breakers_open_at_dispatch, 1);
        assert_eq!(report.digests[0].evidence.brownout_level_at_dispatch, 2);
        assert_eq!(report.digests[1].evidence.breakers_open_at_dispatch, 0);
    }

    #[test]
    fn shed_events_count_against_every_slo() {
        let mut plane = OpsPlane::new(OpsConfig {
            window_cycles: 1_000,
            slos: vec![slo()],
            tail_threshold_cycles: u64::MAX,
            max_digests: 8,
        });
        for c in 0..20u64 {
            plane.event(c * 100, EventKind::Shed { deadline: false });
        }
        let report = plane.finish();
        assert_eq!(report.series.counter_total("ops.shed"), 20);
        assert!(report.alerts[0].first_fire().is_some());
    }

    #[test]
    fn report_json_is_deterministic_and_balanced() {
        let mut plane = OpsPlane::new(OpsConfig {
            window_cycles: 1_000,
            slos: vec![slo()],
            tail_threshold_cycles: 1_000,
            max_digests: 8,
        });
        complete_query(&mut plane, 0, 0, 500, 1_500);
        plane.counter("serve.batches", 1);
        plane.sample(100, "serve.queue_depth", 7);
        let report = plane.finish();
        let j = report.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"alerts\""));
        assert!(j.contains("\"digests\""));
        assert!(j.contains("\"timeseries\""));
        assert!(j.contains("\"totals\""));
        let expo = report.exposition();
        assert!(expo.contains("ansmet_serve_batches 1"));
        assert!(expo.contains("ansmet_serve_queue_depth 7"));
        let t = report.to_string();
        assert!(t.contains("ops plane"));
    }
}
