//! The instrumentation seam: a sink trait with a free no-op default.
//!
//! Hot paths take a `&mut impl TraceSink` and call it unconditionally;
//! with [`NoopSink`] every method monomorphizes to an empty inline body,
//! so the uninstrumented build path stays allocation-free and
//! bit-identical to pre-instrumentation output (enforced by test in
//! `sim`). Guard only genuinely expensive *preparation* (snapshotting
//! DRAM stats, formatting) behind [`TraceSink::enabled`].

use crate::taxonomy::{EventKind, Phase};

/// Receives spans, events, and metric samples from instrumented code.
///
/// All timestamps are simulated cycles in the caller's clock domain
/// (memory cycles in the replay core, serving cycles in the serve tier).
/// Default method bodies are no-ops so sinks implement only what they
/// keep.
pub trait TraceSink {
    /// Whether this sink records anything. Instrumentation may skip
    /// expensive sample preparation when this returns `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// A closed span: `phase` occupied `[start, end)` cycles.
    fn span(&mut self, phase: Phase, start: u64, end: u64) {
        let _ = (phase, start, end);
    }

    /// A point event at `cycle`.
    fn event(&mut self, cycle: u64, kind: EventKind) {
        let _ = (cycle, kind);
    }

    /// Add `delta` to the named counter.
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Raise the named gauge to at least `value` (high-watermark).
    fn gauge_max(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Record `value` into the named histogram.
    fn record(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// A cycle-stamped gauge sample (e.g. instantaneous queue depth).
    ///
    /// Unlike [`gauge_max`](TraceSink::gauge_max) this carries the
    /// observation time, so windowed sinks can aggregate per window.
    fn sample(&mut self, cycle: u64, name: &'static str, value: u64) {
        let _ = (cycle, name, value);
    }
}

/// The default sink: records nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// Forward through mutable references so instrumented helpers can be
/// called with `&mut sink` without re-borrow gymnastics.
impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn span(&mut self, phase: Phase, start: u64, end: u64) {
        (**self).span(phase, start, end)
    }
    fn event(&mut self, cycle: u64, kind: EventKind) {
        (**self).event(cycle, kind)
    }
    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta)
    }
    fn gauge_max(&mut self, name: &'static str, value: u64) {
        (**self).gauge_max(name, value)
    }
    fn record(&mut self, name: &'static str, value: u64) {
        (**self).record(name, value)
    }
    fn sample(&mut self, cycle: u64, name: &'static str, value: u64) {
        (**self).sample(cycle, name, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        // All methods are callable and do nothing.
        s.span(Phase::Traversal, 0, 10);
        s.event(5, EventKind::EtResumed);
        s.counter("x", 1);
        s.gauge_max("y", 2);
        s.record("z", 3);
        s.sample(7, "w", 4);
    }

    #[test]
    fn mut_ref_forwards() {
        struct Probe(u64);
        impl TraceSink for Probe {
            fn enabled(&self) -> bool {
                true
            }
            fn counter(&mut self, _name: &'static str, delta: u64) {
                self.0 += delta;
            }
        }
        let mut p = Probe(0);
        {
            let r: &mut Probe = &mut p;
            assert!(r.enabled());
            r.counter("n", 7);
        }
        assert_eq!(p.0, 7);
    }
}
