//! Windowed time-series aggregation on the serving clock.
//!
//! The ops plane folds every observation into fixed windows of
//! `window_cycles` serving cycles: counters sum per window, gauges keep
//! the per-window high-watermark, histograms bucket per window (so each
//! window has its own p50/p99/p99.9). Storage is `BTreeMap` keyed by
//! metric name then window index, so iteration order — and the JSON
//! export — is canonical and byte-stable across runs and thread counts.
//!
//! Sliding-window reads are served on top of the fixed grid:
//! [`TimeSeries::counter_sum_range`] sums every window overlapping a
//! cycle range, which is what the burn-rate monitors and the forensic
//! classifier need (window-granular, documented as such).

use std::collections::BTreeMap;
use std::fmt;

use crate::histogram::LatencyHistogram;
use crate::metrics::{json_f64, json_string};

/// One fixed window's worth of a single metric.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowCell {
    /// Per-window sum.
    Counter(u64),
    /// Per-window high-watermark.
    Gauge(u64),
    /// Per-window distribution.
    Histogram(LatencyHistogram),
}

/// Fixed-window time series over named metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window_cycles: u64,
    series: BTreeMap<&'static str, BTreeMap<u64, WindowCell>>,
}

impl TimeSeries {
    /// An empty series with the given window width in cycles.
    ///
    /// # Panics
    /// If `window_cycles` is zero.
    pub fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window width must be nonzero");
        TimeSeries {
            window_cycles,
            series: BTreeMap::new(),
        }
    }

    /// Window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// The window index containing `cycle`.
    pub fn window_of(&self, cycle: u64) -> u64 {
        cycle / self.window_cycles
    }

    /// Add `delta` to counter `name` in the window containing `cycle`.
    pub fn counter_add(&mut self, name: &'static str, cycle: u64, delta: u64) {
        let w = self.window_of(cycle);
        match self
            .series
            .entry(name)
            .or_default()
            .entry(w)
            .or_insert(WindowCell::Counter(0))
        {
            WindowCell::Counter(c) => *c += delta,
            other => panic!("series {name:?} is not a counter: {other:?}"),
        }
    }

    /// Raise gauge `name` in the window containing `cycle` to at least
    /// `value`.
    pub fn gauge_max(&mut self, name: &'static str, cycle: u64, value: u64) {
        let w = self.window_of(cycle);
        match self
            .series
            .entry(name)
            .or_default()
            .entry(w)
            .or_insert(WindowCell::Gauge(0))
        {
            WindowCell::Gauge(g) => *g = (*g).max(value),
            other => panic!("series {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Record `value` into histogram `name` in the window containing
    /// `cycle`.
    pub fn record(&mut self, name: &'static str, cycle: u64, value: u64) {
        let w = self.window_of(cycle);
        match self
            .series
            .entry(name)
            .or_default()
            .entry(w)
            .or_insert_with(|| WindowCell::Histogram(LatencyHistogram::new()))
        {
            WindowCell::Histogram(h) => h.record(value),
            other => panic!("series {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Counter `name` summed over all windows.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.windows(name)
            .map(|(_, cell)| match cell {
                WindowCell::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Counter `name` summed over every window overlapping
    /// `[from_cycle, to_cycle)`. Window-granular: a window counts if any
    /// part of it intersects the range.
    pub fn counter_sum_range(&self, name: &str, from_cycle: u64, to_cycle: u64) -> u64 {
        if to_cycle <= from_cycle {
            return 0;
        }
        let first = self.window_of(from_cycle);
        let last = self.window_of(to_cycle - 1);
        self.windows(name)
            .filter(|(w, _)| *w >= first && *w <= last)
            .map(|(_, cell)| match cell {
                WindowCell::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Iterate the populated windows of metric `name` in window order.
    pub fn windows(&self, name: &str) -> impl Iterator<Item = (u64, &WindowCell)> {
        self.series
            .get(name)
            .into_iter()
            .flat_map(|m| m.iter().map(|(w, c)| (*w, c)))
    }

    /// Metric names present, in canonical order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.series.keys().copied()
    }

    /// Whether no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Deterministic JSON export: an object keyed by metric name; each
    /// metric carries its type, the window width, and one entry per
    /// populated window (`w` is the window index, `start_cycle` its
    /// first cycle). Histogram windows export count/mean and the tail
    /// quantiles the ops plane watches.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"window_cycles\": {},\n  \"series\": {{\n",
            self.window_cycles
        ));
        let mut first_metric = true;
        for (name, windows) in &self.series {
            if !first_metric {
                s.push_str(",\n");
            }
            first_metric = false;
            let ty = match windows.values().next() {
                Some(WindowCell::Counter(_)) => "counter",
                Some(WindowCell::Gauge(_)) => "gauge",
                Some(WindowCell::Histogram(_)) => "histogram",
                None => "counter",
            };
            s.push_str(&format!(
                "    {}: {{\"type\": \"{ty}\", \"windows\": [",
                json_string(name)
            ));
            let mut first_w = true;
            for (w, cell) in windows {
                if !first_w {
                    s.push_str(", ");
                }
                first_w = false;
                let start = w * self.window_cycles;
                match cell {
                    WindowCell::Counter(c) => {
                        s.push_str(&format!(
                            "{{\"w\": {w}, \"start_cycle\": {start}, \"value\": {c}}}"
                        ));
                    }
                    WindowCell::Gauge(g) => {
                        s.push_str(&format!(
                            "{{\"w\": {w}, \"start_cycle\": {start}, \"max\": {g}}}"
                        ));
                    }
                    WindowCell::Histogram(h) => {
                        s.push_str(&format!(
                            "{{\"w\": {w}, \"start_cycle\": {start}, \"count\": {}, \
                             \"mean\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                            h.count(),
                            json_f64(h.mean()),
                            h.quantile(0.50),
                            h.quantile(0.99),
                            h.quantile(0.999),
                            h.max(),
                        ));
                    }
                }
            }
            s.push_str("]}");
        }
        s.push_str("\n  }\n}");
        s
    }
}

impl fmt::Display for TimeSeries {
    /// One line per metric: name, type, populated window count, total.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "time series (window = {} cycles)", self.window_cycles)?;
        for (name, windows) in &self.series {
            match windows.values().next() {
                Some(WindowCell::Counter(_)) => {
                    writeln!(
                        f,
                        "  {name}: counter, {} windows, total {}",
                        windows.len(),
                        self.counter_total(name)
                    )?;
                }
                Some(WindowCell::Gauge(_)) => {
                    let peak = windows
                        .values()
                        .map(|c| match c {
                            WindowCell::Gauge(g) => *g,
                            _ => 0,
                        })
                        .max()
                        .unwrap_or(0);
                    writeln!(f, "  {name}: gauge, {} windows, peak {peak}", windows.len())?;
                }
                Some(WindowCell::Histogram(_)) => {
                    let n: u64 = windows
                        .values()
                        .map(|c| match c {
                            WindowCell::Histogram(h) => h.count(),
                            _ => 0,
                        })
                        .sum();
                    writeln!(
                        f,
                        "  {name}: histogram, {} windows, {n} samples",
                        windows.len()
                    )?;
                }
                None => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_bucket_by_window() {
        let mut ts = TimeSeries::new(100);
        ts.counter_add("qps", 0, 1);
        ts.counter_add("qps", 99, 1);
        ts.counter_add("qps", 100, 1);
        ts.counter_add("qps", 250, 1);
        let got: Vec<(u64, u64)> = ts
            .windows("qps")
            .map(|(w, c)| match c {
                WindowCell::Counter(v) => (w, *v),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![(0, 2), (1, 1), (2, 1)]);
        assert_eq!(ts.counter_total("qps"), 4);
    }

    #[test]
    fn range_sums_are_window_granular() {
        let mut ts = TimeSeries::new(100);
        for cycle in [10, 110, 210, 310] {
            ts.counter_add("x", cycle, 1);
        }
        assert_eq!(ts.counter_sum_range("x", 0, 100), 1);
        assert_eq!(ts.counter_sum_range("x", 0, 101), 2);
        // A range touching any part of a window counts the whole window.
        assert_eq!(ts.counter_sum_range("x", 150, 250), 2);
        assert_eq!(ts.counter_sum_range("x", 400, 400), 0);
        assert_eq!(ts.counter_sum_range("x", 0, u64::MAX), 4);
    }

    #[test]
    fn gauges_and_histograms_per_window() {
        let mut ts = TimeSeries::new(50);
        ts.gauge_max("depth", 10, 3);
        ts.gauge_max("depth", 20, 7);
        ts.gauge_max("depth", 60, 2);
        ts.record("lat", 10, 100);
        ts.record("lat", 60, 900);
        let depths: Vec<u64> = ts
            .windows("depth")
            .map(|(_, c)| match c {
                WindowCell::Gauge(g) => *g,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(depths, vec![7, 2]);
        let counts: Vec<u64> = ts
            .windows("lat")
            .map(|(_, c)| match c {
                WindowCell::Histogram(h) => h.count(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn json_is_stable_and_shaped() {
        let mut ts = TimeSeries::new(100);
        ts.counter_add("b", 0, 2);
        ts.gauge_max("a", 150, 5);
        ts.record("c", 10, 640);
        let j = ts.to_json();
        assert_eq!(j, ts.clone().to_json());
        assert!(j.contains("\"window_cycles\": 100"));
        assert!(j.contains("\"a\": {\"type\": \"gauge\""));
        assert!(j.contains("\"start_cycle\": 100"));
        assert!(j.contains("\"p999\""));
        // Canonical ordering: "a" before "b" before "c".
        assert!(j.find("\"a\"").unwrap() < j.find("\"b\"").unwrap());
        assert!(j.find("\"b\"").unwrap() < j.find("\"c\"").unwrap());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn display_names_every_metric() {
        let mut ts = TimeSeries::new(10);
        ts.counter_add("c", 0, 1);
        ts.gauge_max("g", 0, 4);
        ts.record("h", 0, 9);
        let t = ts.to_string();
        assert!(t.contains("c: counter") && t.contains("g: gauge") && t.contains("h: histogram"));
    }
}
