//! Property test: the streaming burn-rate monitor's fire/clear timeline
//! must match the O(n²) full-scan scalar reference on arbitrary
//! observation streams and window shapes. The two implementations share
//! only the [`burn_rate`] scalar, so any windowing, bucketing, or
//! hysteresis bug in one shows up as a divergence.
//!
//! [`burn_rate`]: ansmet_obs::burn_rate

use ansmet_obs::{burn_rate, reference_timeline, BurnRateMonitor, SloSpec};
use proptest::prelude::*;

proptest! {
    fn timeline_matches_scalar_reference(
        gaps in proptest::collection::vec(1u64..5_000, 1..200),
        lats in proptest::collection::vec(0u64..4_000, 1..200),
        fast in 100u64..2_000,
        mult in 1u64..6,
        thresh in 500u64..3_500,
        min_count in 1u64..5,
    ) {
        let spec = SloSpec {
            name: "prop",
            threshold_cycles: thresh,
            target: 0.9,
            fast_window_cycles: fast,
            slow_window_cycles: fast * mult,
            fire_burn: 2.0,
            clear_burn: 1.0,
            min_count,
        };
        let mut mon = BurnRateMonitor::new(spec.clone());
        let mut obs = Vec::new();
        let mut cycle = 0u64;
        for (gap, lat) in gaps.iter().zip(&lats) {
            cycle += gap;
            mon.observe_latency(cycle, *lat);
            obs.push((cycle, *lat <= thresh));
        }
        let got = mon.timeline();
        let want = reference_timeline(&spec, &obs);
        prop_assert_eq!(got, want);
    }

    fn burn_rate_is_bad_fraction_over_error_budget(
        good in 0u64..1_000,
        bad in 0u64..1_000,
    ) {
        let b = burn_rate(good, bad, 0.9);
        let total = good + bad;
        if total == 0 {
            prop_assert_eq!(b, 0.0);
        } else {
            let expect = (bad as f64 / total as f64) / 0.1;
            prop_assert!((b - expect).abs() < 1e-9);
        }
    }
}
