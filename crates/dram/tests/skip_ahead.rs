//! Event-driven skip-ahead must be invisible: driving the memory system
//! with `tick` + `skip_to_event` has to produce exactly the same
//! completion cycles, statistics, and command counts as ticking through
//! every cycle.

use ansmet_dram::{AccessKind, DramConfig, MemoryStats, MemorySystem, Port, Request};

/// One scheduled request: absolute arrival cycle, line index, read?, ndp?
type Op = (u64, u64, bool, bool);

/// `(sorted (id, finish) pairs, stats, per-rank command counts)`.
type StreamOutcome = (Vec<(u64, u64)>, MemoryStats, Vec<(u64, u64, u64, u64, u64)>);

/// xorshift64* — tiny deterministic generator so this test needs no
/// external randomness source.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Build a randomized request stream for `cfg` from `seed`.
fn stream(cfg: &DramConfig, seed: u64, ops: u64) -> Vec<Op> {
    let mut s = seed | 1;
    let lines = (cfg.channels
        * cfg.ranks_per_channel
        * cfg.bank_groups
        * cfg.banks_per_group
        * cfg.rows
        * cfg.columns) as u64;
    let mut t = 0u64;
    (0..ops)
        .map(|_| {
            // Mix dense bursts (gap 0) with idle gaps long enough to make
            // skip-ahead worthwhile.
            let r = xorshift(&mut s);
            let gap = match r % 4 {
                0 => 0,
                1 => r / 7 % 16,
                2 => r / 7 % 300,
                _ => r / 7 % 5000,
            };
            t += gap;
            let line = xorshift(&mut s) % lines;
            let read = !xorshift(&mut s).is_multiple_of(8);
            let ndp = xorshift(&mut s).is_multiple_of(2);
            (t, line, read, ndp)
        })
        .collect()
}

/// Drive `ops` to completion. With `skip`, jump over dead cycles via
/// `skip_to_event`; otherwise tick every cycle.
fn run_stream(cfg: &DramConfig, ops: &[Op], skip: bool) -> StreamOutcome {
    let mut mem = MemorySystem::new(cfg.clone());
    let mut done: Vec<(u64, u64)> = Vec::new();
    let mut next = 0usize;
    let mut guard = 0u64;
    while next < ops.len() || mem.busy() {
        let now = mem.now();
        while next < ops.len() && ops[next].0 <= now {
            let (_, line, read, ndp) = ops[next];
            let kind = if read {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let port = if ndp { Port::Ndp } else { Port::Host };
            let req = Request::new(next as u64, kind, line * 64, port);
            match mem.enqueue(req) {
                Ok(()) => next += 1,
                // Queue full: retry after the next cycle.
                Err(_) => break,
            }
        }
        mem.tick();
        for r in mem.take_completed() {
            done.push((r.id, r.finish));
        }
        if skip {
            let limit = if next < ops.len() {
                ops[next].0
            } else {
                u64::MAX
            };
            mem.skip_to_event(limit);
        }
        guard += 1;
        assert!(guard < 50_000_000, "driver failed to converge");
    }
    // The tick/skip accounting tiles the timeline: every cycle reached
    // was either simulated or skipped, never both, never neither.
    assert_eq!(
        mem.cycles_ticked() + mem.cycles_skipped(),
        mem.now(),
        "cycle accounting does not tile [0, now)"
    );
    if !skip {
        assert_eq!(mem.cycles_skipped(), 0, "tick driver skipped cycles");
    }
    done.sort_unstable();
    (done, mem.stats().clone(), mem.rank_command_counts())
}

/// Drive `ops` with the explicit wakeup-driven drain APIs
/// (`advance_until_accept` on back-pressure, `drain_all` at the end)
/// instead of open-coded tick loops.
fn run_stream_drained(cfg: &DramConfig, ops: &[Op]) -> StreamOutcome {
    let mut mem = MemorySystem::new(cfg.clone());
    let mut done: Vec<(u64, u64)> = Vec::new();
    for (i, &(at, line, read, ndp)) in ops.iter().enumerate() {
        // Wait out the arrival gap with bounded skip-ahead (`fast_forward_to`
        // would jump over refresh cycles the tick reference performs).
        while mem.now() < at {
            mem.tick();
            for r in mem.take_completed() {
                done.push((r.id, r.finish));
            }
            mem.skip_to_event(at);
        }
        let kind = if read {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        let port = if ndp { Port::Ndp } else { Port::Host };
        mem.advance_until_accept(line * 64, port);
        for r in mem.take_completed() {
            done.push((r.id, r.finish));
        }
        mem.enqueue(Request::new(i as u64, kind, line * 64, port))
            .expect("slot guaranteed by advance_until_accept");
    }
    mem.drain_all();
    for r in mem.take_completed() {
        done.push((r.id, r.finish));
    }
    assert_eq!(mem.cycles_ticked() + mem.cycles_skipped(), mem.now());
    done.sort_unstable();
    (done, mem.stats().clone(), mem.rank_command_counts())
}

fn assert_equivalent(cfg: &DramConfig, ops: &[Op]) {
    let (done_t, stats_t, counts_t) = run_stream(cfg, ops, false);
    let (done_s, stats_s, counts_s) = run_stream(cfg, ops, true);
    assert_eq!(done_t, done_s, "completion cycles diverged");
    assert_eq!(stats_t, stats_s, "statistics diverged");
    assert_eq!(counts_t, counts_s, "command counts diverged");
}

#[test]
fn skip_matches_tick_on_idle_gaps() {
    let mut cfg = DramConfig::tiny();
    cfg.refresh_enabled = false;
    let ops: Vec<Op> = vec![
        (0, 0, true, false),
        (3000, 1, true, false),
        (9000, 2, false, true),
        (9000, 130, true, true),
    ];
    assert_equivalent(&cfg, &ops);
}

#[test]
fn skip_matches_tick_with_refresh() {
    let mut cfg = DramConfig::tiny();
    cfg.refresh_enabled = true;
    // Gaps that straddle several refresh intervals.
    let ops: Vec<Op> = (0..12)
        .map(|i| (i * 3100, (i * 37) % 512, i % 5 != 0, i % 2 == 0))
        .collect();
    assert_equivalent(&cfg, &ops);
}

#[test]
fn skip_matches_tick_under_queue_pressure() {
    let mut cfg = DramConfig::tiny();
    cfg.queue_depth = 4;
    // A dense same-bank burst that keeps the tiny queue full.
    let ops: Vec<Op> = (0..32).map(|i| (0, i * 17, true, false)).collect();
    assert_equivalent(&cfg, &ops);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Randomized streams over the tiny config (refresh on) complete
        /// identically under per-cycle ticking and event skip-ahead.
        fn random_streams_tiny(seed in 0u64..100_000, ops in 4u64..48) {
            let mut cfg = DramConfig::tiny();
            cfg.refresh_enabled = true;
            let s = stream(&cfg, seed, ops);
            let (done_t, stats_t, counts_t) = run_stream(&cfg, &s, false);
            let (done_s, stats_s, counts_s) = run_stream(&cfg, &s, true);
            prop_assert_eq!(done_t, done_s);
            prop_assert_eq!(stats_t, stats_s);
            prop_assert_eq!(counts_t, counts_s);
        }

        /// Same property on the full DDR5 geometry (more ranks and banks,
        /// longer refresh interval).
        fn random_streams_ddr5(seed in 0u64..100_000, ops in 4u64..32) {
            let cfg = DramConfig::ddr5_4800();
            let s = stream(&cfg, seed, ops);
            let (done_t, stats_t, counts_t) = run_stream(&cfg, &s, false);
            let (done_s, stats_s, counts_s) = run_stream(&cfg, &s, true);
            prop_assert_eq!(done_t, done_s);
            prop_assert_eq!(stats_t, stats_s);
            prop_assert_eq!(counts_t, counts_s);
        }

        /// A shallow queue keeps back-pressure constant; skip-ahead must
        /// not change when slots free up or requests are accepted.
        fn random_streams_queue_pressure(seed in 0u64..100_000, ops in 8u64..48) {
            let mut cfg = DramConfig::tiny();
            cfg.refresh_enabled = true;
            cfg.queue_depth = 3;
            let s = stream(&cfg, seed, ops);
            let (done_t, stats_t, counts_t) = run_stream(&cfg, &s, false);
            let (done_s, stats_s, counts_s) = run_stream(&cfg, &s, true);
            prop_assert_eq!(done_t, done_s);
            prop_assert_eq!(stats_t, stats_s);
            prop_assert_eq!(counts_t, counts_s);
        }

        /// The explicit drain APIs (`advance_until_accept`, `drain_all`)
        /// are just packaged tick/skip loops: identical completions,
        /// stats, and command streams as the per-cycle reference.
        fn drain_apis_match_tick_reference(seed in 0u64..100_000, ops in 4u64..40) {
            let mut cfg = DramConfig::tiny();
            cfg.refresh_enabled = true;
            cfg.queue_depth = 4;
            let s = stream(&cfg, seed, ops);
            let (done_t, stats_t, counts_t) = run_stream(&cfg, &s, false);
            let (done_d, stats_d, counts_d) = run_stream_drained(&cfg, &s);
            prop_assert_eq!(done_t, done_d);
            prop_assert_eq!(stats_t, stats_d);
            prop_assert_eq!(counts_t, counts_d);
        }
    }
}
