//! Per-rank DRAM state: banks plus rank-level timing constraints
//! (tRRD, tFAW, tCCD, write/read turnaround, refresh) and the rank-local
//! data bus used by the NDP path.

use std::collections::VecDeque;

use crate::bank::Bank;
use crate::command::{Command, CommandKind};
use crate::config::{DramConfig, PagePolicy, Timing};

/// One DRAM rank with its banks and rank-level constraint state.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    bank_groups: usize,
    banks_per_group: usize,
    page_policy: PagePolicy,
    /// Last ACT cycle per bank group (for tRRD_L) and rank-wide (tRRD_S).
    last_act_rank: Option<u64>,
    last_act_group: Vec<Option<u64>>,
    /// Sliding window of the last four ACT cycles (tFAW).
    faw_window: VecDeque<u64>,
    /// Last CAS cycle rank-wide / per group (tCCD_S / tCCD_L).
    last_cas_rank: Option<(u64, CommandKind)>,
    last_cas_group: Vec<Option<(u64, CommandKind)>>,
    /// Earliest next READ allowed after a WRITE (write-to-read turnaround).
    next_read_after_write: u64,
    /// Earliest next WRITE allowed after a READ (read-to-write turnaround).
    next_write_after_read: u64,
    /// Rank-local data bus free time (NDP path).
    pub local_bus_free: u64,
    /// Next refresh deadline.
    next_refresh: u64,
    /// Set while a refresh is pending and banks must drain/precharge.
    refresh_pending: bool,
    /// Command counters for energy accounting.
    pub acts: u64,
    /// Precharge count.
    pub pres: u64,
    /// Read burst count.
    pub reads: u64,
    /// Write burst count.
    pub writes: u64,
    /// Refresh count.
    pub refreshes: u64,
}

impl Rank {
    /// Create a rank for `config`.
    pub fn new(config: &DramConfig) -> Self {
        let nbanks = config.banks_per_rank();
        Rank {
            banks: vec![Bank::default(); nbanks],
            bank_groups: config.bank_groups,
            banks_per_group: config.banks_per_group,
            page_policy: config.page_policy,
            last_act_rank: None,
            last_act_group: vec![None; config.bank_groups],
            faw_window: VecDeque::with_capacity(4),
            last_cas_rank: None,
            last_cas_group: vec![None; config.bank_groups],
            next_read_after_write: 0,
            next_write_after_read: 0,
            local_bus_free: 0,
            next_refresh: config.timing.refi,
            refresh_pending: false,
            acts: 0,
            pres: 0,
            reads: 0,
            writes: 0,
            refreshes: 0,
        }
    }

    fn bank_index(&self, cmd: &Command) -> usize {
        cmd.bank_group * self.banks_per_group + cmd.bank
    }

    /// Immutable access to a bank by (group, bank) coordinates.
    pub fn bank(&self, bank_group: usize, bank: usize) -> &Bank {
        &self.banks[bank_group * self.banks_per_group + bank]
    }

    /// Number of row-buffer hits across all banks.
    pub fn total_row_hits(&self) -> u64 {
        self.banks.iter().map(|b| b.row_hits).sum()
    }

    /// Whether every bank is precharged (required before refresh).
    pub fn all_precharged(&self) -> bool {
        self.banks.iter().all(Bank::is_precharged)
    }

    /// Whether a refresh is due at or before `now`.
    pub fn refresh_due(&self, now: u64) -> bool {
        now >= self.next_refresh
    }

    /// Mark that the scheduler has begun draining for refresh.
    pub fn set_refresh_pending(&mut self, pending: bool) {
        self.refresh_pending = pending;
    }

    /// Whether the rank is draining toward a refresh (new row activity
    /// should be suppressed).
    pub fn refresh_pending(&self) -> bool {
        self.refresh_pending
    }

    fn check_act(&self, cmd: &Command, now: u64, t: &Timing) -> bool {
        if let Some(last) = self.last_act_rank {
            if now < last + t.rrd_s {
                return false;
            }
        }
        if let Some(last) = self.last_act_group[cmd.bank_group] {
            if now < last + t.rrd_l {
                return false;
            }
        }
        if self.faw_window.len() == 4 {
            let oldest = *self.faw_window.front().expect("len checked");
            if now < oldest + t.faw {
                return false;
            }
        }
        true
    }

    fn check_cas(&self, cmd: &Command, now: u64, t: &Timing) -> bool {
        let is_read = cmd.kind == CommandKind::Read;
        if let Some((last, _)) = self.last_cas_rank {
            if now < last + t.ccd_s {
                return false;
            }
        }
        if let Some((last, _)) = self.last_cas_group[cmd.bank_group] {
            if now < last + t.ccd_l {
                return false;
            }
        }
        if is_read && now < self.next_read_after_write {
            return false;
        }
        if !is_read && now < self.next_write_after_read {
            return false;
        }
        true
    }

    /// Whether `cmd` satisfies all bank- and rank-level constraints at `now`.
    pub fn can_issue(&self, cmd: &Command, now: u64, t: &Timing) -> bool {
        let bank = &self.banks[self.bank_index(cmd)];
        if !bank.can_issue(cmd.kind, cmd.row, now) {
            return false;
        }
        match cmd.kind {
            CommandKind::Activate => !self.refresh_pending && self.check_act(cmd, now, t),
            CommandKind::Read | CommandKind::Write => self.check_cas(cmd, now, t),
            CommandKind::Precharge => true,
            CommandKind::Refresh => self.all_precharged(),
        }
    }

    /// Apply `cmd` at `now`, updating all timing state and counters.
    pub fn issue(&mut self, cmd: &Command, now: u64, t: &Timing) {
        debug_assert!(self.can_issue(cmd, now, t), "illegal {cmd:?} at {now}");
        let idx = self.bank_index(cmd);
        let auto_pre = self.page_policy == PagePolicy::Closed && cmd.kind.is_cas();
        self.banks[idx].issue(cmd, now, t, auto_pre);
        match cmd.kind {
            CommandKind::Activate => {
                self.last_act_rank = Some(now);
                self.last_act_group[cmd.bank_group] = Some(now);
                if self.faw_window.len() == 4 {
                    self.faw_window.pop_front();
                }
                self.faw_window.push_back(now);
                self.acts += 1;
            }
            CommandKind::Precharge => {
                self.pres += 1;
            }
            CommandKind::Read => {
                self.last_cas_rank = Some((now, cmd.kind));
                self.last_cas_group[cmd.bank_group] = Some((now, cmd.kind));
                // Read-to-write bus turnaround: write data may start only
                // after the read burst clears the bus.
                self.next_write_after_read = self
                    .next_write_after_read
                    .max(now + t.cl + t.burst_cycles + 2 - t.cwl);
                self.reads += 1;
            }
            CommandKind::Write => {
                self.last_cas_rank = Some((now, cmd.kind));
                self.last_cas_group[cmd.bank_group] = Some((now, cmd.kind));
                self.next_read_after_write = self
                    .next_read_after_write
                    .max(now + t.cwl + t.burst_cycles + t.wtr_l);
                self.writes += 1;
            }
            CommandKind::Refresh => {
                for bank in &mut self.banks {
                    bank.block_activates_until(now + t.rfc);
                }
                self.next_refresh = now + t.refi;
                self.refresh_pending = false;
                self.refreshes += 1;
            }
        }
    }

    /// Record a row-buffer outcome on the bank targeted by `cmd`.
    pub fn record_outcome(&mut self, cmd: &Command, hit: bool, conflict: bool) {
        let idx = self.bank_index(cmd);
        self.banks[idx].record_outcome(hit, conflict);
    }

    /// Controller-generated precharge used to drain open banks ahead of a
    /// refresh. Precharges the first open bank whose timing allows it and
    /// returns the command issued, if any.
    pub fn force_precharge_one(&mut self, now: u64, t: &Timing) -> Option<Command> {
        for bg in 0..self.bank_groups {
            for b in 0..self.banks_per_group {
                let bank = self.bank(bg, b);
                if let Some(row) = bank.open_row() {
                    let cmd = Command {
                        kind: CommandKind::Precharge,
                        bank_group: bg,
                        bank: b,
                        row,
                        column: 0,
                    };
                    if self.can_issue(&cmd, now, t) {
                        self.issue(&cmd, now, t);
                        return Some(cmd);
                    }
                }
            }
        }
        None
    }

    /// The command the rank needs to issue next to serve a CAS to
    /// (`bank_group`, `bank`, `row`).
    pub fn needed_command(
        &self,
        bank_group: usize,
        bank: usize,
        row: usize,
        is_read: bool,
    ) -> CommandKind {
        self.bank(bank_group, bank).needed_command(row, is_read)
    }

    /// Earliest cycle an ACT to `bank_group` satisfies the rank-level
    /// constraints (tRRD_S, tRRD_L, tFAW). Bank-level tRC/tRP are layered
    /// on top by the caller; refresh draining is not considered.
    pub fn earliest_act(&self, bank_group: usize, t: &Timing) -> u64 {
        let mut e = 0;
        if let Some(last) = self.last_act_rank {
            e = e.max(last + t.rrd_s);
        }
        if let Some(last) = self.last_act_group[bank_group] {
            e = e.max(last + t.rrd_l);
        }
        if self.faw_window.len() == 4 {
            let oldest = *self.faw_window.front().expect("len checked");
            e = e.max(oldest + t.faw);
        }
        e
    }

    /// Earliest cycle a CAS of `kind` to `bank_group` satisfies the
    /// rank-level constraints (tCCD_S, tCCD_L, read/write turnaround).
    /// Bank-level tRCD and data-bus availability are layered on top by the
    /// caller.
    pub fn earliest_cas(&self, bank_group: usize, kind: CommandKind, t: &Timing) -> u64 {
        let is_read = kind == CommandKind::Read;
        let mut e = 0;
        if let Some((last, _)) = self.last_cas_rank {
            e = e.max(last + t.ccd_s);
        }
        if let Some((last, _)) = self.last_cas_group[bank_group] {
            e = e.max(last + t.ccd_l);
        }
        if is_read {
            e = e.max(self.next_read_after_write);
        } else {
            e = e.max(self.next_write_after_read);
        }
        e
    }

    /// Cycle of the next refresh-related state change: the refresh deadline
    /// when none is pending, otherwise the next drain precharge or the
    /// refresh command itself. Used by event-driven skip-ahead.
    pub fn next_refresh_event(&self) -> u64 {
        if !self.refresh_pending {
            return self.next_refresh;
        }
        if self.all_precharged() {
            // The refresh command gates only on bank 0 timing (the
            // controller issues it with bank coordinates (0, 0)).
            self.banks[0].earliest(CommandKind::Refresh)
        } else {
            // The next controller-forced drain precharge.
            self.banks
                .iter()
                .filter(|b| !b.is_precharged())
                .map(|b| b.earliest(CommandKind::Precharge))
                .min()
                .unwrap_or(self.next_refresh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::tiny()
    }

    fn cmd(kind: CommandKind, bg: usize, bank: usize, row: usize) -> Command {
        Command {
            kind,
            bank_group: bg,
            bank,
            row,
            column: 0,
        }
    }

    #[test]
    fn rrd_between_activates() {
        let c = cfg();
        let t = c.timing.clone();
        let mut r = Rank::new(&c);
        r.issue(&cmd(CommandKind::Activate, 0, 0, 1), 0, &t);
        // Same bank group: tRRD_L.
        let a2 = cmd(CommandKind::Activate, 0, 1, 1);
        assert!(!r.can_issue(&a2, t.rrd_l - 1, &t));
        assert!(r.can_issue(&a2, t.rrd_l, &t));
        // Different bank group: tRRD_S.
        let a3 = cmd(CommandKind::Activate, 1, 0, 1);
        assert!(!r.can_issue(&a3, t.rrd_s - 1, &t));
        assert!(r.can_issue(&a3, t.rrd_s, &t));
    }

    #[test]
    fn faw_limits_burst_of_activates() {
        let mut c = cfg();
        c.bank_groups = 4;
        c.banks_per_group = 2;
        let t = c.timing.clone();
        let mut r = Rank::new(&c);
        // Issue four ACTs as fast as tRRD_S allows.
        let mut now = 0;
        for i in 0..4 {
            let a = cmd(CommandKind::Activate, i, 0, 1);
            while !r.can_issue(&a, now, &t) {
                now += 1;
            }
            r.issue(&a, now, &t);
        }
        // Fifth ACT must wait for the FAW window.
        let a5 = cmd(CommandKind::Activate, 0, 1, 1);
        let first = 0;
        assert!(!r.can_issue(&a5, (first + t.faw).saturating_sub(1), &t) || t.faw <= now);
        let mut t5 = now;
        while !r.can_issue(&a5, t5, &t) {
            t5 += 1;
        }
        assert!(t5 >= first + t.faw);
    }

    #[test]
    fn ccd_between_reads() {
        let c = cfg();
        let t = c.timing.clone();
        let mut r = Rank::new(&c);
        r.issue(&cmd(CommandKind::Activate, 0, 0, 1), 0, &t);
        r.issue(&cmd(CommandKind::Activate, 1, 0, 1), t.rrd_s, &t);
        let start = t.rcd + t.rrd_s;
        r.issue(&cmd(CommandKind::Read, 0, 0, 1), start, &t);
        // Same group read: tCCD_L; other group: tCCD_S.
        assert!(!r.can_issue(&cmd(CommandKind::Read, 0, 0, 1), start + t.ccd_l - 1, &t));
        assert!(r.can_issue(&cmd(CommandKind::Read, 0, 0, 1), start + t.ccd_l, &t));
        assert!(!r.can_issue(&cmd(CommandKind::Read, 1, 0, 1), start + t.ccd_s - 1, &t));
        assert!(r.can_issue(&cmd(CommandKind::Read, 1, 0, 1), start + t.ccd_s, &t));
    }

    #[test]
    fn write_to_read_turnaround() {
        let c = cfg();
        let t = c.timing.clone();
        let mut r = Rank::new(&c);
        r.issue(&cmd(CommandKind::Activate, 0, 0, 1), 0, &t);
        let wr_at = t.rcd;
        r.issue(&cmd(CommandKind::Write, 0, 0, 1), wr_at, &t);
        let earliest_rd = wr_at + t.cwl + t.burst_cycles + t.wtr_l;
        assert!(!r.can_issue(&cmd(CommandKind::Read, 0, 0, 1), earliest_rd - 1, &t));
        assert!(r.can_issue(&cmd(CommandKind::Read, 0, 0, 1), earliest_rd, &t));
    }

    #[test]
    fn refresh_requires_precharged_banks() {
        let c = cfg();
        let t = c.timing.clone();
        let mut r = Rank::new(&c);
        r.issue(&cmd(CommandKind::Activate, 0, 0, 1), 0, &t);
        let refc = cmd(CommandKind::Refresh, 0, 0, 0);
        assert!(!r.can_issue(&refc, t.refi, &t));
        r.issue(&cmd(CommandKind::Precharge, 0, 0, 1), t.ras, &t);
        assert!(r.can_issue(&refc, t.refi, &t));
        r.issue(&refc, t.refi, &t);
        assert_eq!(r.refreshes, 1);
        // Banks blocked for tRFC... only the refreshed timing applies to ACT.
        assert!(!r.can_issue(&cmd(CommandKind::Activate, 0, 0, 2), t.refi + 1, &t));
    }

    #[test]
    fn counters_accumulate() {
        let c = cfg();
        let t = c.timing.clone();
        let mut r = Rank::new(&c);
        r.issue(&cmd(CommandKind::Activate, 0, 0, 1), 0, &t);
        r.issue(&cmd(CommandKind::Read, 0, 0, 1), t.rcd, &t);
        r.issue(&cmd(CommandKind::Read, 0, 0, 1), t.rcd + t.ccd_l, &t);
        assert_eq!(r.acts, 1);
        assert_eq!(r.reads, 2);
    }
}
