//! DRAM energy model.
//!
//! Energy is derived from per-rank command counts plus a background term,
//! in the spirit of the Micron DRAM power model used by Ramulator 2.0.
//! Absolute constants are representative DDR5 values; the evaluation uses
//! them only for *relative* comparisons between designs, as in the paper.

/// Per-event energy constants (nanojoules / milliwatts).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy of one ACT + its eventual PRE (row open/close), nJ.
    pub act_pre_nj: f64,
    /// Energy of one 64 B read burst including I/O, nJ.
    pub read_nj: f64,
    /// Energy of one 64 B write burst including I/O, nJ.
    pub write_nj: f64,
    /// Energy of one all-bank refresh, nJ.
    pub refresh_nj: f64,
    /// Background (standby) power per rank, mW.
    pub background_mw_per_rank: f64,
}

impl EnergyModel {
    /// Representative DDR5 constants.
    pub fn ddr5() -> Self {
        EnergyModel {
            act_pre_nj: 1.8,
            read_nj: 4.0,
            write_nj: 4.2,
            refresh_nj: 25.0,
            background_mw_per_rank: 45.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr5()
    }
}

/// Computed energy breakdown, all in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyCounters {
    /// Activate/precharge energy.
    pub act_pre_nj: f64,
    /// Read burst energy.
    pub read_nj: f64,
    /// Write burst energy.
    pub write_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background/standby energy.
    pub background_nj: f64,
}

impl EnergyCounters {
    /// Total DRAM energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Total DRAM energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }
}

impl EnergyModel {
    /// Compute energy from per-rank `(acts, pres, reads, writes, refreshes)`
    /// counters over `elapsed_cycles` at `cycle_ns` per cycle.
    pub fn compute(
        &self,
        rank_counts: &[(u64, u64, u64, u64, u64)],
        elapsed_cycles: u64,
        cycle_ns: f64,
    ) -> EnergyCounters {
        let mut c = EnergyCounters::default();
        for &(acts, _pres, reads, writes, refreshes) in rank_counts {
            c.act_pre_nj += acts as f64 * self.act_pre_nj;
            c.read_nj += reads as f64 * self.read_nj;
            c.write_nj += writes as f64 * self.write_nj;
            c.refresh_nj += refreshes as f64 * self.refresh_nj;
        }
        let seconds = elapsed_cycles as f64 * cycle_ns * 1e-9;
        // mW × s = µJ = 1e3 nJ.
        c.background_nj = self.background_mw_per_rank * rank_counts.len() as f64 * seconds * 1e6;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_has_only_background() {
        let m = EnergyModel::ddr5();
        let c = m.compute(&[(0, 0, 0, 0, 0); 4], 2_400_000, 0.41667);
        assert_eq!(c.act_pre_nj, 0.0);
        assert!(c.background_nj > 0.0);
        // 4 ranks × 45 mW × 1 ms = 180 µJ = 1.8e5 nJ.
        assert!((c.background_nj - 1.8e5).abs() / 1.8e5 < 0.01);
    }

    #[test]
    fn command_energy_scales_linearly() {
        let m = EnergyModel::ddr5();
        let a = m.compute(&[(10, 10, 100, 0, 0)], 0, 0.41667);
        let b = m.compute(&[(20, 20, 200, 0, 0)], 0, 0.41667);
        assert!((b.total_nj() - 2.0 * a.total_nj()).abs() < 1e-9);
    }

    #[test]
    fn reads_cost_less_than_writes() {
        let m = EnergyModel::ddr5();
        let r = m.compute(&[(0, 0, 100, 0, 0)], 0, 0.4);
        let w = m.compute(&[(0, 0, 0, 100, 0)], 0, 0.4);
        assert!(w.total_nj() > r.total_nj());
    }
}
