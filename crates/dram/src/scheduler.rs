//! FR-FCFS command scheduling.
//!
//! The scheduler scans a request queue oldest-first and selects the first
//! request whose next required command is timing-ready, giving priority to
//! requests that are already row hits (First-Ready, First-Come-First-Served).
//! Data-bus availability is supplied by the caller because host and NDP
//! paths use different buses.

use crate::command::{Command, CommandKind};
use crate::config::Timing;
use crate::rank::Rank;
use crate::request::{AccessKind, Request};

/// A scheduling decision: which queued request to advance, with what command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Index into the request queue.
    pub queue_index: usize,
    /// The command to issue now.
    pub command: Command,
    /// Rank the command targets.
    pub rank: usize,
    /// True when this CAS completes the request (row hit path).
    pub completes: bool,
    /// Row-buffer outcome classification for the *first* command issued on
    /// behalf of this request (hit / miss / conflict).
    pub row_hit: bool,
}

/// Build the command a request needs next on `rank`.
fn needed(req: &Request, rank: &Rank) -> Command {
    let is_read = req.kind == AccessKind::Read;
    let kind = rank.needed_command(req.loc.bank_group, req.loc.bank, req.loc.row, is_read);
    Command {
        kind,
        bank_group: req.loc.bank_group,
        bank: req.loc.bank,
        row: req.loc.row,
        column: req.loc.column,
    }
}

/// Pick the next command for `queue` under FR-FCFS.
///
/// `ranks` are the ranks reachable from this queue (indexed by
/// `Request::loc.rank` for a host channel queue, or a single rank for an NDP
/// queue with `rank_base` pointing at it). `cas_ready(rank, kind, now)` must
/// return whether the data bus can accept the burst produced by a CAS issued
/// at `now`.
pub fn pick<F>(
    queue: &[Request],
    ranks: &[Rank],
    now: u64,
    timing: &Timing,
    mut cas_ready: F,
) -> Option<Decision>
where
    F: FnMut(usize, CommandKind, u64) -> bool,
{
    let mut fallback: Option<Decision> = None;
    for (qi, req) in queue.iter().enumerate() {
        let rank_idx = req.loc.rank;
        let rank = &ranks[rank_idx];
        let cmd = needed(req, rank);
        if !rank.can_issue(&cmd, now, timing) {
            continue;
        }
        if cmd.kind.is_cas() && !cas_ready(rank_idx, cmd.kind, now) {
            continue;
        }
        let is_hit = cmd.kind.is_cas();
        let decision = Decision {
            queue_index: qi,
            command: cmd,
            rank: rank_idx,
            completes: cmd.kind.is_cas(),
            row_hit: is_hit,
        };
        if is_hit {
            // First ready row hit wins immediately.
            return Some(decision);
        }
        if fallback.is_none() {
            fallback = Some(decision);
        }
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrmap::Location;
    use crate::config::DramConfig;
    use crate::request::Port;

    fn req(id: u64, rank: usize, bg: usize, bank: usize, row: usize) -> Request {
        let mut r = Request::new(id, AccessKind::Read, 0, Port::Host);
        r.loc = Location {
            channel: 0,
            rank,
            bank_group: bg,
            bank,
            row,
            column: 0,
        };
        r
    }

    #[test]
    fn prefers_row_hit_over_older_miss() {
        let cfg = DramConfig::tiny();
        let t = cfg.timing.clone();
        let mut ranks = vec![Rank::new(&cfg), Rank::new(&cfg)];
        // Open row 7 in rank 0 / bg 0 / bank 0.
        let act = Command {
            kind: CommandKind::Activate,
            bank_group: 0,
            bank: 0,
            row: 7,
            column: 0,
        };
        ranks[0].issue(&act, 0, &t);
        let now = t.rcd;
        // Queue: older request is a row miss (row 9), younger is a hit (row 7).
        let queue = vec![req(0, 0, 0, 1, 9), req(1, 0, 0, 0, 7)];
        let d = pick(&queue, &ranks, now, &t, |_, _, _| true).expect("ready");
        assert_eq!(d.queue_index, 1);
        assert_eq!(d.command.kind, CommandKind::Read);
        assert!(d.completes);
    }

    #[test]
    fn falls_back_to_oldest_activate() {
        let cfg = DramConfig::tiny();
        let t = cfg.timing.clone();
        let ranks = vec![Rank::new(&cfg)];
        let queue = vec![req(0, 0, 0, 0, 3), req(1, 0, 0, 1, 4)];
        let d = pick(&queue, &ranks, 0, &t, |_, _, _| true).expect("ready");
        assert_eq!(d.queue_index, 0);
        assert_eq!(d.command.kind, CommandKind::Activate);
        assert!(!d.completes);
    }

    #[test]
    fn respects_bus_backpressure() {
        let cfg = DramConfig::tiny();
        let t = cfg.timing.clone();
        let mut ranks = vec![Rank::new(&cfg)];
        let act = Command {
            kind: CommandKind::Activate,
            bank_group: 0,
            bank: 0,
            row: 7,
            column: 0,
        };
        ranks[0].issue(&act, 0, &t);
        let queue = vec![req(0, 0, 0, 0, 7)];
        // Bus not ready: no decision (the only option is a CAS).
        let d = pick(&queue, &ranks, t.rcd, &t, |_, _, _| false);
        assert!(d.is_none());
    }

    #[test]
    fn empty_queue_yields_none() {
        let cfg = DramConfig::tiny();
        let t = cfg.timing.clone();
        let ranks = vec![Rank::new(&cfg)];
        assert!(pick(&[], &ranks, 0, &t, |_, _, _| true).is_none());
    }
}
