//! DRAM organization and timing configuration.
//!
//! The default configuration reproduces Table 1 of the paper:
//! DDR5-4800, 4 channels × 2 DIMMs × 4 ranks, 8 bank groups × 4 banks,
//! RCD-CAS-RP = 40-40-40 (cycles at the 2400 MHz command clock).

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Leave rows open after a CAS (FR-FCFS exploits row hits; the
    /// paper's streaming-friendly default).
    #[default]
    Open,
    /// Auto-precharge after every CAS (each access pays a fresh ACT,
    /// but precharge latency is hidden off the critical path).
    Closed,
}

/// DDR timing parameters, all in command-clock cycles.
///
/// DDR5-4800 transfers data at 4800 MT/s on a 2400 MHz clock; a 64 B
/// cacheline is one BL16 burst and occupies the data bus for
/// `burst_cycles = 8` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timing {
    /// ACT to internal read/write delay (tRCD).
    pub rcd: u64,
    /// CAS latency: READ command to first data (CL).
    pub cl: u64,
    /// CAS write latency: WRITE command to first data (CWL).
    pub cwl: u64,
    /// PRE to ACT delay on the same bank (tRP).
    pub rp: u64,
    /// ACT to PRE minimum (tRAS).
    pub ras: u64,
    /// ACT to ACT on the same bank (tRC).
    pub rc: u64,
    /// CAS to CAS, different bank group (tCCD_S).
    pub ccd_s: u64,
    /// CAS to CAS, same bank group (tCCD_L).
    pub ccd_l: u64,
    /// ACT to ACT, different bank group (tRRD_S).
    pub rrd_s: u64,
    /// ACT to ACT, same bank group (tRRD_L).
    pub rrd_l: u64,
    /// Four-activate window (tFAW).
    pub faw: u64,
    /// Write recovery: end of write data to PRE (tWR).
    pub wr: u64,
    /// Write-to-read turnaround, different bank group (tWTR_S).
    pub wtr_s: u64,
    /// Write-to-read turnaround, same bank group (tWTR_L).
    pub wtr_l: u64,
    /// READ to PRE delay (tRTP).
    pub rtp: u64,
    /// Average refresh interval (tREFI).
    pub refi: u64,
    /// Refresh cycle time (tRFC).
    pub rfc: u64,
    /// Data-bus occupancy of one 64 B burst (BL16 / 2).
    pub burst_cycles: u64,
    /// Rank-to-rank data-bus switch penalty on a shared channel bus.
    pub rank_switch: u64,
}

impl Timing {
    /// DDR5-4800B-like timing (cycles at 2400 MHz; 1 cycle ≈ 0.4167 ns).
    ///
    /// RCD-CAS-RP = 40-40-40 per Table 1 of the paper; the remaining
    /// parameters follow the JEDEC DDR5-4800 speed bin.
    pub fn ddr5_4800() -> Self {
        Timing {
            rcd: 40,
            cl: 40,
            cwl: 38,
            rp: 40,
            ras: 77,
            rc: 117,
            ccd_s: 8,
            ccd_l: 12,
            rrd_s: 8,
            rrd_l: 12,
            faw: 32,
            wr: 72,
            wtr_s: 10,
            wtr_l: 24,
            rtp: 18,
            refi: 9360,
            rfc: 984,
            burst_cycles: 8,
            rank_switch: 2,
        }
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent memory channels.
    pub channels: usize,
    /// Ranks per channel (DIMMs × ranks-per-DIMM).
    pub ranks_per_channel: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Column (cacheline) slots per row; a row holds `columns * 64` bytes.
    pub columns: usize,
    /// Timing parameters.
    pub timing: Timing,
    /// Command clock frequency in MHz (2400 for DDR5-4800).
    pub clock_mhz: u64,
    /// Host-side per-channel request queue capacity.
    pub queue_depth: usize,
    /// Whether periodic refresh is simulated.
    pub refresh_enabled: bool,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
}

impl DramConfig {
    /// The paper's Table 1 system: DDR5-4800, 4 channels × 2 DIMMs × 4 ranks,
    /// 8 bank groups × 4 banks.
    pub fn ddr5_4800() -> Self {
        DramConfig {
            channels: 4,
            ranks_per_channel: 8,
            bank_groups: 8,
            banks_per_group: 4,
            rows: 1 << 16,
            columns: 128,
            timing: Timing::ddr5_4800(),
            clock_mhz: 2400,
            queue_depth: 64,
            refresh_enabled: true,
            page_policy: PagePolicy::Open,
        }
    }

    /// A small configuration for fast unit tests: 1 channel, 2 ranks.
    pub fn tiny() -> Self {
        DramConfig {
            channels: 1,
            ranks_per_channel: 2,
            bank_groups: 2,
            banks_per_group: 2,
            rows: 256,
            columns: 32,
            timing: Timing::ddr5_4800(),
            clock_mhz: 2400,
            queue_depth: 16,
            refresh_enabled: false,
            page_policy: PagePolicy::Open,
        }
    }

    /// Scale the number of ranks (NDP units) while keeping 4 channels, as in
    /// the Table 3 scalability study (8/16/32/64 total ranks).
    pub fn with_total_ranks(mut self, total: usize) -> Self {
        assert!(
            total.is_multiple_of(self.channels),
            "total ranks must divide evenly across channels"
        );
        self.ranks_per_channel = total / self.channels;
        self
    }

    /// Total ranks in the system (= number of NDP units in ANSMET).
    pub fn total_ranks(&self) -> usize {
        self.channels * self.ranks_per_channel
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Duration of one command-clock cycle in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }

    /// Peak data bandwidth of one channel (or one rank-local NDP bus) in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        64.0 / (self.timing.burst_cycles as f64 * self.cycle_ns())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr5_4800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_organization() {
        let c = DramConfig::ddr5_4800();
        assert_eq!(c.channels, 4);
        assert_eq!(c.total_ranks(), 32);
        assert_eq!(c.banks_per_rank(), 32);
        assert_eq!(c.timing.rcd, 40);
        assert_eq!(c.timing.cl, 40);
        assert_eq!(c.timing.rp, 40);
    }

    #[test]
    fn cycle_time_matches_ddr5_4800() {
        let c = DramConfig::ddr5_4800();
        assert!((c.cycle_ns() - 0.41667).abs() < 1e-3);
        // One channel: 64B per 8 cycles @ 2400MHz = 19.2 GB/s.
        assert!((c.peak_bandwidth_gbps() - 19.2).abs() < 0.1);
    }

    #[test]
    fn rank_scaling() {
        let c = DramConfig::ddr5_4800().with_total_ranks(64);
        assert_eq!(c.ranks_per_channel, 16);
        assert_eq!(c.total_ranks(), 64);
    }

    #[test]
    fn timing_sanity() {
        let t = Timing::ddr5_4800();
        assert!(t.rc >= t.ras + t.rp);
        assert!(t.ccd_l >= t.ccd_s);
        assert!(t.rrd_l >= t.rrd_s);
        assert!(t.faw >= 4 * t.rrd_s / 2);
    }
}
