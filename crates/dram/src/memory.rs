//! The top-level memory system: channels, queues, tick loop, statistics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::addrmap::AddrMap;
use crate::command::CommandKind;
use crate::config::DramConfig;
use crate::rank::Rank;
use crate::request::{AccessKind, Port, Request, Response};
use crate::scheduler;

/// Aggregate statistics exported by the memory system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryStats {
    /// Completed host reads.
    pub host_reads: u64,
    /// Completed host writes.
    pub host_writes: u64,
    /// Completed NDP reads.
    pub ndp_reads: u64,
    /// Completed NDP writes.
    pub ndp_writes: u64,
    /// Sum of host request latencies (cycles).
    pub host_latency_sum: u64,
    /// Sum of NDP request latencies (cycles).
    pub ndp_latency_sum: u64,
    /// Row-buffer hits (request served by an immediate CAS).
    pub row_hits: u64,
    /// Row-buffer misses (bank was closed).
    pub row_misses: u64,
    /// Row-buffer conflicts (another row was open).
    pub row_conflicts: u64,
    /// Cycles any host channel data bus carried data.
    pub host_bus_busy_cycles: u64,
    /// Cycles any rank-local (NDP) data bus carried data.
    pub ndp_bus_busy_cycles: u64,
}

impl MemoryStats {
    /// Mean host-read latency in cycles (0 when no reads completed).
    pub fn avg_host_latency(&self) -> f64 {
        let n = self.host_reads + self.host_writes;
        if n == 0 {
            0.0
        } else {
            self.host_latency_sum as f64 / n as f64
        }
    }

    /// Mean NDP-request latency in cycles (0 when none completed).
    pub fn avg_ndp_latency(&self) -> f64 {
        let n = self.ndp_reads + self.ndp_writes;
        if n == 0 {
            0.0
        } else {
            self.ndp_latency_sum as f64 / n as f64
        }
    }

    /// Total completed 64 B transfers.
    pub fn total_accesses(&self) -> u64 {
        self.host_reads + self.host_writes + self.ndp_reads + self.ndp_writes
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingDone {
    finish: u64,
    response: Response,
}

impl Ord for PendingDone {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish
            .cmp(&other.finish)
            .then(self.response.id.cmp(&other.response.id))
    }
}

impl PartialOrd for PendingDone {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct Channel {
    ranks: Vec<Rank>,
    host_queue: Vec<Request>,
    host_outcome: Vec<Option<bool>>,
    ndp_queues: Vec<Vec<Request>>,
    ndp_outcome: Vec<Vec<Option<bool>>>,
    host_bus_free: u64,
    host_bus_last_rank: Option<usize>,
}

impl Channel {
    fn new(config: &DramConfig) -> Self {
        let nranks = config.ranks_per_channel;
        Channel {
            ranks: (0..nranks).map(|_| Rank::new(config)).collect(),
            host_queue: Vec::new(),
            host_outcome: Vec::new(),
            ndp_queues: vec![Vec::new(); nranks],
            ndp_outcome: vec![Vec::new(); nranks],
            host_bus_free: 0,
            host_bus_last_rank: None,
        }
    }

    fn is_idle(&self) -> bool {
        self.host_queue.is_empty() && self.ndp_queues.iter().all(Vec::is_empty)
    }
}

/// The full, cycle-steppable memory system.
///
/// Drive it by calling [`MemorySystem::enqueue`] and [`MemorySystem::tick`];
/// completed requests appear via [`MemorySystem::completed`] /
/// [`MemorySystem::take_completed`].
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: DramConfig,
    addr_map: AddrMap,
    channels: Vec<Channel>,
    now: u64,
    pending: BinaryHeap<Reverse<PendingDone>>,
    completed: Vec<Response>,
    stats: MemoryStats,
    /// Opt-in per-command trace (`None` = disabled, the default; the
    /// hot path must not pay for a buffer nobody reads).
    command_trace: Option<Vec<CommandRecord>>,
    /// Cycles actually stepped through [`MemorySystem::tick`]. Kept out
    /// of [`MemoryStats`] so equivalence tests comparing stats between
    /// wheel-driven and tick-driven runs still pass — how time advanced
    /// is a host-driver concern, not an observable memory outcome.
    cycles_ticked: u64,
    /// Cycles jumped over by [`MemorySystem::skip_to_event`] /
    /// [`MemorySystem::fast_forward_to`] without ticking.
    cycles_skipped: u64,
    /// Counter used to sample skip-ahead audits in debug builds.
    #[cfg(debug_assertions)]
    skip_audits: u64,
}

/// One issued DRAM command, recorded when command tracing is enabled
/// (see [`MemorySystem::enable_command_trace`]). Refresh-management
/// commands (refreshes and their forced precharges) are not recorded —
/// the trace covers the scheduler's request-serving command stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Cycle at which the command issued.
    pub cycle: u64,
    /// Command class.
    pub kind: CommandKind,
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Whether the scheduler classified the target access as a row hit.
    pub row_hit: bool,
    /// `true` for the NDP rank-local path, `false` for the host path.
    pub ndp: bool,
}

impl MemorySystem {
    /// Build a memory system for `config`.
    pub fn new(config: DramConfig) -> Self {
        let addr_map = AddrMap::new(&config);
        let channels = (0..config.channels)
            .map(|_| Channel::new(&config))
            .collect();
        MemorySystem {
            config,
            addr_map,
            channels,
            now: 0,
            pending: BinaryHeap::new(),
            completed: Vec::new(),
            stats: MemoryStats::default(),
            command_trace: None,
            cycles_ticked: 0,
            cycles_skipped: 0,
            #[cfg(debug_assertions)]
            skip_audits: 0,
        }
    }

    /// Start recording every issued command into an internal buffer.
    /// Disabled by default; enabling mid-run records from that point on.
    pub fn enable_command_trace(&mut self) {
        if self.command_trace.is_none() {
            self.command_trace = Some(Vec::new());
        }
    }

    /// Whether command tracing is currently enabled.
    pub fn command_trace_enabled(&self) -> bool {
        self.command_trace.is_some()
    }

    /// Drain the recorded commands (empty if tracing is disabled).
    /// Tracing stays enabled; subsequent commands accumulate afresh.
    pub fn take_command_trace(&mut self) -> Vec<CommandRecord> {
        match self.command_trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address decoder (shared with callers that pre-compute locations).
    pub fn addr_map(&self) -> &AddrMap {
        &self.addr_map
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Cycles actually stepped through [`MemorySystem::tick`].
    pub fn cycles_ticked(&self) -> u64 {
        self.cycles_ticked
    }

    /// Cycles the event machinery jumped over without ticking.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Per-rank command counters, flattened channel-major, for energy
    /// accounting: `(acts, pres, reads, writes, refreshes)` per rank.
    pub fn rank_command_counts(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        self.channels
            .iter()
            .flat_map(|c| {
                c.ranks
                    .iter()
                    .map(|r| (r.acts, r.pres, r.reads, r.writes, r.refreshes))
            })
            .collect()
    }

    /// Whether a request can currently be accepted on `port` for `addr`.
    pub fn can_accept(&self, addr: u64, port: Port) -> bool {
        let loc = self.addr_map.decode(addr);
        let ch = &self.channels[loc.channel];
        match port {
            Port::Host => ch.host_queue.len() < self.config.queue_depth,
            Port::Ndp => ch.ndp_queues[loc.rank].len() < self.config.queue_depth,
        }
    }

    /// Enqueue a 64 B request.
    ///
    /// # Errors
    ///
    /// Returns the request back if the target queue is full.
    pub fn enqueue(&mut self, mut req: Request) -> Result<(), Request> {
        let loc = self.addr_map.decode(req.addr);
        req.loc = loc;
        req.arrival = self.now;
        let ch = &mut self.channels[loc.channel];
        match req.port {
            Port::Host => {
                if ch.host_queue.len() >= self.config.queue_depth {
                    return Err(req);
                }
                ch.host_queue.push(req);
                ch.host_outcome.push(None);
            }
            Port::Ndp => {
                if ch.ndp_queues[loc.rank].len() >= self.config.queue_depth {
                    return Err(req);
                }
                ch.ndp_queues[loc.rank].push(req);
                ch.ndp_outcome[loc.rank].push(None);
            }
        }
        Ok(())
    }

    /// Responses completed but not yet taken.
    pub fn completed(&self) -> &[Response] {
        &self.completed
    }

    /// Drain and return all completed responses.
    pub fn take_completed(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.completed)
    }

    /// Whether any request is queued or in flight.
    pub fn busy(&self) -> bool {
        !self.pending.is_empty() || self.channels.iter().any(|c| !c.is_idle())
    }

    /// Advance the clock directly to `cycle` when the system is idle.
    /// Refresh deadlines catch up lazily (at most one refresh fires per rank
    /// immediately after the jump), which slightly under-counts refresh
    /// energy across long idle gaps — acceptable for this simulator's use.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Busy`] if requests are queued or in flight,
    /// and [`MemoryError::PastCycle`] if `cycle` is behind the clock. The
    /// clock is unchanged on error.
    pub fn fast_forward_to(&mut self, cycle: u64) -> Result<(), crate::MemoryError> {
        if self.busy() {
            return Err(crate::MemoryError::Busy { requested: cycle });
        }
        if cycle < self.now {
            return Err(crate::MemoryError::PastCycle {
                now: self.now,
                requested: cycle,
            });
        }
        self.cycles_skipped += cycle - self.now;
        self.now = cycle;
        Ok(())
    }

    /// Lower bound on the earliest cycle at which `req` (queued on `ch`)
    /// could have its next command issued, given the current frozen state.
    /// Never later than the true issue cycle; may be earlier (e.g. while a
    /// refresh drain suppresses activates).
    fn earliest_request_issue(&self, ch: &Channel, req: &Request, host: bool) -> Option<u64> {
        let t = &self.config.timing;
        let rank = &ch.ranks[req.loc.rank];
        let is_read = req.kind == AccessKind::Read;
        let kind = rank.needed_command(req.loc.bank_group, req.loc.bank, req.loc.row, is_read);
        let bank = rank.bank(req.loc.bank_group, req.loc.bank);
        let mut e = bank.earliest(kind);
        match kind {
            CommandKind::Activate => {
                if self.config.refresh_enabled && rank.refresh_pending() {
                    // Unissuable until the refresh fires, which is itself
                    // a tracked event — contribute nothing.
                    return None;
                }
                e = e.max(rank.earliest_act(req.loc.bank_group, t));
            }
            CommandKind::Read | CommandKind::Write => {
                e = e.max(rank.earliest_cas(req.loc.bank_group, kind, t));
                // Data-bus backpressure: a CAS issued at cycle x starts its
                // burst at x + CL/CWL, which must not precede bus release.
                let lead = if kind == CommandKind::Read {
                    t.cl
                } else {
                    t.cwl
                };
                let needed = if host {
                    if ch.host_bus_last_rank.is_some()
                        && ch.host_bus_last_rank != Some(req.loc.rank)
                    {
                        ch.host_bus_free + t.rank_switch
                    } else {
                        ch.host_bus_free
                    }
                } else {
                    rank.local_bus_free
                };
                e = e.max(needed.saturating_sub(lead));
            }
            CommandKind::Precharge | CommandKind::Refresh => {}
        }
        Some(e)
    }

    /// The earliest future cycle at which the system state can change: the
    /// next pending burst retirement, the earliest issue opportunity of any
    /// queued request, or a refresh deadline/drain step. Returns `None`
    /// only when the system is idle with refresh disabled. The value is a
    /// lower bound: ticking any cycle strictly before it is a no-op.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let mut next = u64::MAX;
        if let Some(Reverse(head)) = self.pending.peek() {
            next = next.min(head.finish);
        }
        for ch in &self.channels {
            if self.config.refresh_enabled {
                for rank in &ch.ranks {
                    next = next.min(rank.next_refresh_event());
                }
            }
            for req in &ch.host_queue {
                if let Some(e) = self.earliest_request_issue(ch, req, true) {
                    next = next.min(e);
                }
            }
            for q in &ch.ndp_queues {
                for req in q {
                    if let Some(e) = self.earliest_request_issue(ch, req, false) {
                        next = next.min(e);
                    }
                }
            }
        }
        if next == u64::MAX {
            None
        } else {
            Some(next)
        }
    }

    /// Jump the clock forward to `min(limit, next_event_cycle())` without
    /// ticking, skipping cycles in which nothing can happen. A no-op when
    /// the target is not ahead of the clock. In debug builds a sampled
    /// audit replays the skipped span cycle-by-cycle on a clone and asserts
    /// that no observable state changed.
    pub fn skip_to_event(&mut self, limit: u64) {
        let target = match self.next_event_cycle() {
            Some(e) => e.min(limit),
            None => limit,
        };
        if target <= self.now || target == u64::MAX {
            return;
        }
        #[cfg(debug_assertions)]
        self.audit_skip(target);
        self.cycles_skipped += target - self.now;
        self.now = target;
    }

    /// Sampled cross-check that the span `[now, target)` is truly dead:
    /// a per-cycle shadow replay must leave all observable state unchanged.
    #[cfg(debug_assertions)]
    fn audit_skip(&mut self, target: u64) {
        let jump = target - self.now;
        if jump <= 8 || jump > 4096 {
            return;
        }
        self.skip_audits += 1;
        if self.skip_audits % 64 != 1 {
            return;
        }
        let mut shadow = self.clone();
        while shadow.now < target {
            shadow.tick();
        }
        assert_eq!(
            shadow.stats, self.stats,
            "skip-ahead to {target} jumped over an acting cycle (stats)"
        );
        assert_eq!(
            shadow.completed.len(),
            self.completed.len(),
            "skip-ahead to {target} jumped over a retirement"
        );
        assert_eq!(
            shadow.rank_command_counts(),
            self.rank_command_counts(),
            "skip-ahead to {target} jumped over a command issue"
        );
    }

    /// Advance one cycle: retire finished bursts, schedule refreshes, and
    /// issue at most one host command per channel plus one NDP command per
    /// rank.
    pub fn tick(&mut self) {
        let now = self.now;
        // Retire finished data bursts.
        while let Some(Reverse(head)) = self.pending.peek() {
            if head.finish > now {
                break;
            }
            let done = self.pending.pop().expect("peeked").0;
            self.completed.push(done.response);
        }

        let timing = self.config.timing.clone();
        let refresh_enabled = self.config.refresh_enabled;
        let queue_policy_cl = timing.cl;
        let queue_policy_cwl = timing.cwl;
        let burst = timing.burst_cycles;
        let rank_switch = timing.rank_switch;

        for (ch_idx, ch) in self.channels.iter_mut().enumerate() {
            // --- Refresh management -------------------------------------
            if refresh_enabled {
                for rank in ch.ranks.iter_mut() {
                    if rank.refresh_due(now) && !rank.refresh_pending() {
                        rank.set_refresh_pending(true);
                    }
                    if rank.refresh_pending() {
                        if rank.all_precharged() {
                            let refc = crate::command::Command {
                                kind: CommandKind::Refresh,
                                bank_group: 0,
                                bank: 0,
                                row: 0,
                                column: 0,
                            };
                            if rank.can_issue(&refc, now, &timing) {
                                rank.issue(&refc, now, &timing);
                            }
                        } else {
                            rank.force_precharge_one(now, &timing);
                        }
                    }
                }
            }

            // --- Host path: one command per channel C/A bus per cycle ----
            let host_bus_free = ch.host_bus_free;
            let host_last_rank = ch.host_bus_last_rank;
            let decision = scheduler::pick(
                &ch.host_queue,
                &ch.ranks,
                now,
                &timing,
                |rank_idx, kind, t| {
                    let data_start = t + if kind == CommandKind::Read {
                        queue_policy_cl
                    } else {
                        queue_policy_cwl
                    };
                    let needed = if host_last_rank.is_some() && host_last_rank != Some(rank_idx) {
                        host_bus_free + rank_switch
                    } else {
                        host_bus_free
                    };
                    data_start >= needed
                },
            );
            if let Some(d) = decision {
                let req_kind;
                {
                    let req = &ch.host_queue[d.queue_index];
                    req_kind = req.kind;
                }
                if ch.host_outcome[d.queue_index].is_none() {
                    ch.host_outcome[d.queue_index] = Some(d.row_hit);
                    let conflict = d.command.kind == CommandKind::Precharge;
                    ch.ranks[d.rank].record_outcome(&d.command, d.row_hit, conflict);
                    if d.row_hit {
                        self.stats.row_hits += 1;
                    } else if conflict {
                        self.stats.row_conflicts += 1;
                    } else {
                        self.stats.row_misses += 1;
                    }
                }
                ch.ranks[d.rank].issue(&d.command, now, &timing);
                if let Some(trace) = self.command_trace.as_mut() {
                    trace.push(CommandRecord {
                        cycle: now,
                        kind: d.command.kind,
                        channel: ch_idx,
                        rank: d.rank,
                        row_hit: d.row_hit,
                        ndp: false,
                    });
                }
                if d.completes {
                    let req = ch.host_queue.remove(d.queue_index);
                    let first_hit = ch.host_outcome.remove(d.queue_index).unwrap_or(d.row_hit);
                    let lat = if req_kind == AccessKind::Read {
                        queue_policy_cl + burst
                    } else {
                        queue_policy_cwl + burst
                    };
                    let finish = now + lat;
                    ch.host_bus_free = finish;
                    ch.host_bus_last_rank = Some(d.rank);
                    self.stats.host_bus_busy_cycles += burst;
                    match req.kind {
                        AccessKind::Read => self.stats.host_reads += 1,
                        AccessKind::Write => self.stats.host_writes += 1,
                    }
                    self.stats.host_latency_sum += finish - req.arrival;
                    self.pending.push(Reverse(PendingDone {
                        finish,
                        response: Response {
                            id: req.id,
                            kind: req.kind,
                            arrival: req.arrival,
                            finish,
                            row_hit: first_hit,
                        },
                    }));
                }
            }

            // --- NDP path: one command per rank-local C/A per cycle -------
            for rank_idx in 0..ch.ranks.len() {
                if ch.ndp_queues[rank_idx].is_empty() {
                    continue;
                }
                let local_bus_free = ch.ranks[rank_idx].local_bus_free;
                let decision = scheduler::pick(
                    &ch.ndp_queues[rank_idx],
                    &ch.ranks,
                    now,
                    &timing,
                    |_, kind, t| {
                        let data_start = t + if kind == CommandKind::Read {
                            queue_policy_cl
                        } else {
                            queue_policy_cwl
                        };
                        data_start >= local_bus_free
                    },
                );
                if let Some(d) = decision {
                    debug_assert_eq!(d.rank, rank_idx, "NDP queue is rank-local");
                    let req_kind = ch.ndp_queues[rank_idx][d.queue_index].kind;
                    if ch.ndp_outcome[rank_idx][d.queue_index].is_none() {
                        ch.ndp_outcome[rank_idx][d.queue_index] = Some(d.row_hit);
                        let conflict = d.command.kind == CommandKind::Precharge;
                        ch.ranks[d.rank].record_outcome(&d.command, d.row_hit, conflict);
                        if d.row_hit {
                            self.stats.row_hits += 1;
                        } else if conflict {
                            self.stats.row_conflicts += 1;
                        } else {
                            self.stats.row_misses += 1;
                        }
                    }
                    ch.ranks[d.rank].issue(&d.command, now, &timing);
                    if let Some(trace) = self.command_trace.as_mut() {
                        trace.push(CommandRecord {
                            cycle: now,
                            kind: d.command.kind,
                            channel: ch_idx,
                            rank: d.rank,
                            row_hit: d.row_hit,
                            ndp: true,
                        });
                    }
                    if d.completes {
                        let req = ch.ndp_queues[rank_idx].remove(d.queue_index);
                        let first_hit = ch.ndp_outcome[rank_idx]
                            .remove(d.queue_index)
                            .unwrap_or(d.row_hit);
                        let lat = if req_kind == AccessKind::Read {
                            queue_policy_cl + burst
                        } else {
                            queue_policy_cwl + burst
                        };
                        let finish = now + lat;
                        ch.ranks[rank_idx].local_bus_free = finish;
                        self.stats.ndp_bus_busy_cycles += burst;
                        match req.kind {
                            AccessKind::Read => self.stats.ndp_reads += 1,
                            AccessKind::Write => self.stats.ndp_writes += 1,
                        }
                        self.stats.ndp_latency_sum += finish - req.arrival;
                        self.pending.push(Reverse(PendingDone {
                            finish,
                            response: Response {
                                id: req.id,
                                kind: req.kind,
                                arrival: req.arrival,
                                finish,
                                row_hit: first_hit,
                            },
                        }));
                    }
                }
            }
        }

        self.now += 1;
        self.cycles_ticked += 1;
    }

    /// Tick until all queued and in-flight requests complete, or until
    /// `max_cycles` additional cycles have elapsed.
    ///
    /// Returns the number of cycles stepped.
    pub fn drain(&mut self, max_cycles: u64) -> u64 {
        let start = self.now;
        let limit = start.saturating_add(max_cycles);
        while self.busy() && self.now < limit {
            self.tick();
            if self.busy() {
                // Event-driven skip: jump over cycles in which no command
                // can issue and no burst retires.
                self.skip_to_event(limit);
            }
        }
        self.now - start
    }

    /// Advance until at least one response sits in the completed buffer,
    /// jumping dead spans instead of ticking through them. The caller must
    /// have work in flight: with nothing queued or pending there is no
    /// completion to wait for, and this returns immediately (debug builds
    /// assert instead, since such a call is a driver bug).
    ///
    /// Returns the number of cycles advanced (ticked + skipped).
    pub fn advance_to_completion(&mut self) -> u64 {
        debug_assert!(
            self.busy() || !self.completed.is_empty(),
            "advance_to_completion with no request in flight would hang"
        );
        let start = self.now;
        while self.completed.is_empty() && self.busy() {
            let before = self.completed.len();
            self.tick();
            if self.completed.len() == before && self.busy() {
                self.skip_to_event(u64::MAX);
            }
        }
        self.now - start
    }

    /// Advance until [`MemorySystem::can_accept`] holds for (`addr`,
    /// `port`), i.e. until the target queue has a free slot. Progress
    /// requires in-flight work to retire; with an idle system the queue
    /// can never drain further, so this returns immediately (and asserts
    /// in debug builds when the queue is still full — that would be an
    /// unserviceable wait).
    ///
    /// Returns the number of cycles advanced (ticked + skipped).
    pub fn advance_until_accept(&mut self, addr: u64, port: Port) -> u64 {
        let start = self.now;
        while !self.can_accept(addr, port) && self.busy() {
            let before = self.completed.len();
            self.tick();
            // A slot frees when a queued request's data command issues,
            // which retires nothing — recheck before skipping ahead, or
            // the wait would overshoot to the next DRAM event.
            if self.completed.len() == before && self.busy() && !self.can_accept(addr, port) {
                self.skip_to_event(u64::MAX);
            }
        }
        debug_assert!(
            self.can_accept(addr, port),
            "advance_until_accept stalled: queue full with nothing in flight"
        );
        self.now - start
    }

    /// Advance until every queued and in-flight request has completed —
    /// the explicit replacement for open-coded
    /// `while pending > 0 {{ tick(); skip_to_event(u64::MAX) }}` drains.
    /// Debug builds assert the queues really are empty on return.
    ///
    /// Returns the number of cycles advanced (ticked + skipped).
    pub fn drain_all(&mut self) -> u64 {
        let start = self.now;
        while self.busy() {
            let before = self.completed.len();
            self.tick();
            if self.completed.len() == before && self.busy() {
                self.skip_to_event(u64::MAX);
            }
        }
        debug_assert!(
            self.pending.is_empty() && self.channels.iter().all(Channel::is_idle),
            "drain_all returned with work still queued"
        );
        self.now - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_at(mem: &mut MemorySystem, id: u64, addr: u64, port: Port) {
        mem.enqueue(Request::new(id, AccessKind::Read, addr, port))
            .expect("space");
    }

    #[test]
    fn single_read_closed_bank_latency() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let t = cfg.timing.clone();
        let mut mem = MemorySystem::new(cfg);
        read_at(&mut mem, 1, 0, Port::Host);
        let cycles = mem.drain(100_000);
        assert!(cycles > 0);
        let done = mem.take_completed();
        assert_eq!(done.len(), 1);
        // Closed bank: ACT at cycle 0, RD at tRCD, data at tRCD+CL+BL.
        assert_eq!(done[0].latency(), t.rcd + t.cl + t.burst_cycles);
        assert!(!done[0].row_hit);
    }

    #[test]
    fn command_trace_records_issue_stream() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        assert!(!mem.command_trace_enabled());
        assert!(mem.take_command_trace().is_empty(), "disabled ⇒ empty");
        mem.enable_command_trace();
        read_at(&mut mem, 1, 0, Port::Host);
        read_at(&mut mem, 2, 64, Port::Host); // same row → RD only
        mem.drain(100_000);
        let trace = mem.take_command_trace();
        // Closed bank: ACT then RD for the first, RD alone for the hit.
        let kinds: Vec<CommandKind> = trace.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![CommandKind::Activate, CommandKind::Read, CommandKind::Read]
        );
        assert!(trace.iter().all(|c| c.channel == 0 && !c.ndp));
        assert!(trace[2].row_hit, "second read hits the open row");
        let mut cycles: Vec<u64> = trace.iter().map(|c| c.cycle).collect();
        let sorted = {
            let mut s = cycles.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(cycles, sorted, "trace is in issue order");
        cycles.dedup();
        assert_eq!(cycles.len(), 3, "one command per cycle per channel");
        // Draining leaves tracing on but the buffer empty.
        assert!(mem.command_trace_enabled());
        assert!(mem.take_command_trace().is_empty());
    }

    #[test]
    fn command_trace_disabled_costs_nothing() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let mut with = MemorySystem::new(cfg.clone());
        with.enable_command_trace();
        let mut without = MemorySystem::new(cfg);
        for m in [&mut with, &mut without] {
            read_at(m, 1, 0, Port::Host);
            read_at(m, 2, 4096, Port::Ndp);
            m.drain(100_000);
        }
        // Tracing never perturbs timing or stats.
        assert_eq!(with.now(), without.now());
        assert_eq!(with.stats(), without.stats());
        assert!(with.take_command_trace().iter().any(|c| c.ndp));
        assert!(without.take_command_trace().is_empty());
    }

    #[test]
    fn second_read_same_row_is_hit() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        // Same row, different column: addr stride of one channel interleave.
        read_at(&mut mem, 1, 0, Port::Host);
        read_at(&mut mem, 2, 64, Port::Host); // tiny has 1 channel → column 1
        mem.drain(100_000);
        let done = mem.take_completed();
        assert_eq!(done.len(), 2);
        let second = done.iter().find(|r| r.id == 2).expect("id 2 done");
        assert!(second.row_hit);
        assert_eq!(mem.stats().row_hits, 1);
        assert_eq!(mem.stats().row_misses, 1);
    }

    #[test]
    fn ndp_ranks_operate_in_parallel() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        cfg.queue_depth = 64;
        // Streaming row-hit traffic to both ranks. On the host path the two
        // streams share one channel DQ bus; on the NDP path each rank
        // streams on its own local bus, so NDP should take roughly half the
        // time.
        let map = AddrMap::new(&cfg);
        let addrs: Vec<(u64, u64)> = (0..16u64)
            .flat_map(|col| {
                [0usize, 1].into_iter().map(move |rank| {
                    let loc = crate::addrmap::Location {
                        channel: 0,
                        rank,
                        bank_group: 0,
                        bank: 0,
                        row: 1,
                        column: col as usize,
                    };
                    (rank as u64, loc)
                })
            })
            .map(|(rank, loc)| (rank, map.encode(loc)))
            .collect();

        let mut ndp = MemorySystem::new(cfg.clone());
        for (i, (_, a)) in addrs.iter().enumerate() {
            read_at(&mut ndp, i as u64, *a, Port::Ndp);
        }
        let ndp_cycles = ndp.drain(1_000_000);

        let mut host = MemorySystem::new(cfg);
        for (i, (_, a)) in addrs.iter().enumerate() {
            read_at(&mut host, i as u64, *a, Port::Host);
        }
        let host_cycles = host.drain(1_000_000);
        assert!(
            (ndp_cycles as f64) < host_cycles as f64 * 0.75,
            "NDP ({ndp_cycles}) should beat host ({host_cycles}) on rank-parallel traffic"
        );
    }

    #[test]
    fn streaming_reads_approach_peak_bandwidth() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let t = cfg.timing.clone();
        let mut mem = MemorySystem::new(cfg);
        // 16 sequential lines in the same row: after the first ACT the bus
        // should stream at one burst per tCCD_L.
        let mut issued = 0u64;
        let mut next_id = 0u64;
        while issued < 16 {
            if mem.can_accept(issued * 64, Port::Host) {
                read_at(&mut mem, next_id, issued * 64, Port::Host);
                next_id += 1;
                issued += 1;
            }
            mem.tick();
        }
        mem.drain(1_000_000);
        let done = mem.take_completed();
        assert_eq!(done.len(), 16);
        let last = done.iter().map(|r| r.finish).max().expect("nonempty");
        // Lower bound: 16 bursts cannot finish faster than 16 × tCCD_L.
        assert!(last >= 16 * t.ccd_l.min(t.burst_cycles));
        // And should be well under fully-serialized closed-bank latency.
        assert!(last < 16 * (t.rcd + t.cl + t.burst_cycles));
    }

    #[test]
    fn refresh_eventually_fires() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = true;
        let refi = cfg.timing.refi;
        let mut mem = MemorySystem::new(cfg);
        for _ in 0..(refi + 1200) {
            mem.tick();
        }
        let counts = mem.rank_command_counts();
        assert!(counts.iter().any(|c| c.4 > 0), "some rank refreshed");
    }

    #[test]
    fn queue_full_returns_request() {
        let mut cfg = DramConfig::tiny();
        cfg.queue_depth = 2;
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        assert!(mem
            .enqueue(Request::new(0, AccessKind::Read, 0, Port::Host))
            .is_ok());
        assert!(mem
            .enqueue(Request::new(1, AccessKind::Read, 0, Port::Host))
            .is_ok());
        let r = mem.enqueue(Request::new(2, AccessKind::Read, 0, Port::Host));
        assert!(r.is_err());
        assert_eq!(r.unwrap_err().id, 2);
    }

    #[test]
    fn writes_complete() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        mem.enqueue(Request::new(9, AccessKind::Write, 4096, Port::Host))
            .expect("space");
        mem.drain(100_000);
        let done = mem.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, AccessKind::Write);
        assert_eq!(mem.stats().host_writes, 1);
    }

    #[test]
    fn closed_page_policy_forfeits_row_hits() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        cfg.page_policy = crate::config::PagePolicy::Closed;
        let mut mem = MemorySystem::new(cfg);
        read_at(&mut mem, 1, 0, Port::Host);
        mem.drain(100_000);
        read_at(&mut mem, 2, 64, Port::Host); // same row, next column
        mem.drain(100_000);
        let done = mem.take_completed();
        let second = done.iter().find(|r| r.id == 2).expect("id 2 done");
        assert!(!second.row_hit, "closed policy auto-precharges after CAS");
        assert_eq!(mem.stats().row_misses, 2);
    }

    #[test]
    fn fast_forward_when_idle() {
        let mut mem = MemorySystem::new(DramConfig::tiny());
        mem.fast_forward_to(5000).expect("idle system");
        assert_eq!(mem.now(), 5000);
    }

    #[test]
    fn fast_forward_busy_rejected() {
        let mut mem = MemorySystem::new(DramConfig::tiny());
        mem.enqueue(Request::new(0, AccessKind::Read, 0, Port::Host))
            .expect("space");
        assert_eq!(
            mem.fast_forward_to(10),
            Err(crate::MemoryError::Busy { requested: 10 })
        );
        assert_eq!(mem.now(), 0, "clock unchanged on error");
    }

    #[test]
    fn advance_to_completion_waits_exactly_one_retirement() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let t = cfg.timing.clone();
        let mut mem = MemorySystem::new(cfg);
        read_at(&mut mem, 1, 0, Port::Host);
        let advanced = mem.advance_to_completion();
        assert!(advanced > 0);
        let done = mem.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].latency(), t.rcd + t.cl + t.burst_cycles);
        // Counters split the advance into ticked + skipped cycles.
        assert_eq!(mem.cycles_ticked() + mem.cycles_skipped(), mem.now());
        assert!(mem.cycles_skipped() > 0, "latency span should skip");
    }

    #[test]
    fn advance_until_accept_frees_a_slot() {
        let mut cfg = DramConfig::tiny();
        cfg.queue_depth = 2;
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        read_at(&mut mem, 0, 0, Port::Host);
        read_at(&mut mem, 1, 64, Port::Host);
        assert!(!mem.can_accept(128, Port::Host));
        mem.advance_until_accept(128, Port::Host);
        assert!(mem.can_accept(128, Port::Host));
        read_at(&mut mem, 2, 128, Port::Host);
        mem.drain_all();
        assert_eq!(mem.take_completed().len(), 3);
        assert!(!mem.busy());
    }

    #[test]
    fn drain_all_matches_bounded_drain() {
        let mut cfg = DramConfig::tiny();
        cfg.refresh_enabled = false;
        let mut a = MemorySystem::new(cfg.clone());
        let mut b = MemorySystem::new(cfg);
        for m in [&mut a, &mut b] {
            read_at(m, 1, 0, Port::Host);
            read_at(m, 2, 4096, Port::Ndp);
        }
        a.drain_all();
        b.drain(1_000_000);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn fast_forward_past_rejected() {
        let mut mem = MemorySystem::new(DramConfig::tiny());
        mem.fast_forward_to(100).expect("idle system");
        assert_eq!(
            mem.fast_forward_to(50),
            Err(crate::MemoryError::PastCycle {
                now: 100,
                requested: 50
            })
        );
        assert_eq!(mem.now(), 100);
    }
}
