//! Typed errors for recoverable memory-system misuse.
//!
//! The memory system used to `assert!` on host-driver protocol mistakes
//! (fast-forwarding a busy system, rewinding the clock). Those are
//! recoverable from the host's point of view — a fault-tolerant driver
//! retries or falls back — so they surface as [`MemoryError`] values
//! instead of panics.

use std::error::Error;
use std::fmt;

/// A recoverable memory-system protocol error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// Fast-forward requested while requests were queued or in flight.
    Busy {
        /// The requested target cycle.
        requested: u64,
    },
    /// Fast-forward target earlier than the current cycle.
    PastCycle {
        /// The current cycle.
        now: u64,
        /// The (earlier) requested target cycle.
        requested: u64,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Busy { requested } => write!(
                f,
                "cannot fast-forward a busy memory system (to cycle {requested})"
            ),
            MemoryError::PastCycle { now, requested } => write!(
                f,
                "cannot fast-forward into the past (now {now}, requested {requested})"
            ),
        }
    }
}

impl Error for MemoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cycle() {
        let e = MemoryError::Busy { requested: 42 };
        assert!(e.to_string().contains("busy"));
        assert!(e.to_string().contains("42"));
        let e = MemoryError::PastCycle {
            now: 10,
            requested: 5,
        };
        assert!(e.to_string().contains("past"));
    }
}
