//! Physical-address to DRAM-location mapping.
//!
//! The default interleaving is `Row | Rank | BankGroup | Bank | Column | Channel`
//! from most- to least-significant (low bits select the channel so that
//! consecutive cachelines stripe across channels, then columns within a row
//! for host streaming locality).

use crate::config::DramConfig;

/// Decoded DRAM coordinates of a 64 B cacheline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank group index within the rank.
    pub bank_group: usize,
    /// Bank index within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column (cacheline slot) within the row.
    pub column: usize,
}

/// Address decoder for a given [`DramConfig`].
#[derive(Debug, Clone)]
pub struct AddrMap {
    channels: usize,
    ranks: usize,
    bank_groups: usize,
    banks: usize,
    rows: usize,
    columns: usize,
}

impl AddrMap {
    /// Build the decoder for `config`.
    pub fn new(config: &DramConfig) -> Self {
        AddrMap {
            channels: config.channels,
            ranks: config.ranks_per_channel,
            bank_groups: config.bank_groups,
            banks: config.banks_per_group,
            rows: config.rows,
            columns: config.columns,
        }
    }

    /// Decode a byte address into DRAM coordinates.
    ///
    /// The low 6 bits (64 B offset) are discarded; successive fields are
    /// peeled off the line address in the order channel, column, bank,
    /// bank group, rank, row. Row wraps modulo the configured row count so
    /// arbitrary synthetic addresses stay in range.
    pub fn decode(&self, addr: u64) -> Location {
        let mut line = addr >> 6;
        let channel = (line % self.channels as u64) as usize;
        line /= self.channels as u64;
        let column = (line % self.columns as u64) as usize;
        line /= self.columns as u64;
        let bank = (line % self.banks as u64) as usize;
        line /= self.banks as u64;
        let bank_group = (line % self.bank_groups as u64) as usize;
        line /= self.bank_groups as u64;
        let rank = (line % self.ranks as u64) as usize;
        line /= self.ranks as u64;
        let row = (line % self.rows as u64) as usize;
        Location {
            channel,
            rank,
            bank_group,
            bank,
            row,
            column,
        }
    }

    /// Re-encode coordinates into a canonical byte address (inverse of
    /// [`AddrMap::decode`] for in-range rows).
    pub fn encode(&self, loc: Location) -> u64 {
        let mut line = loc.row as u64;
        line = line * self.ranks as u64 + loc.rank as u64;
        line = line * self.bank_groups as u64 + loc.bank_group as u64;
        line = line * self.banks as u64 + loc.bank as u64;
        line = line * self.columns as u64 + loc.column as u64;
        line = line * self.channels as u64 + loc.channel as u64;
        line << 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddrMap {
        AddrMap::new(&DramConfig::ddr5_4800())
    }

    #[test]
    fn consecutive_lines_stripe_channels() {
        let m = map();
        let a = m.decode(0);
        let b = m.decode(64);
        let c = m.decode(128);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(c.channel, 2);
    }

    #[test]
    fn roundtrip() {
        let m = map();
        for addr in [0u64, 64, 4096, 1 << 20, 0x1234_5678 & !63] {
            let loc = m.decode(addr);
            assert_eq!(m.encode(loc), addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn offset_bits_ignored() {
        let m = map();
        assert_eq!(m.decode(0x40), m.decode(0x7f));
    }

    #[test]
    fn fields_in_range() {
        let cfg = DramConfig::ddr5_4800();
        let m = AddrMap::new(&cfg);
        for i in 0..10_000u64 {
            let loc = m.decode(i * 64 * 37);
            assert!(loc.channel < cfg.channels);
            assert!(loc.rank < cfg.ranks_per_channel);
            assert!(loc.bank_group < cfg.bank_groups);
            assert!(loc.bank < cfg.banks_per_group);
            assert!(loc.row < cfg.rows);
            assert!(loc.column < cfg.columns);
        }
    }
}
