//! Per-bank DRAM state machine.

use crate::command::{Command, CommandKind};
use crate::config::Timing;

/// One DRAM bank: open-row state plus earliest-allowed issue cycles.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<usize>,
    next_act: u64,
    next_pre: u64,
    next_cas: u64,
    /// Row-buffer hit/miss counters for statistics.
    pub row_hits: u64,
    /// Row misses (activations required).
    pub row_misses: u64,
    /// Row conflicts (precharge of another row required).
    pub row_conflicts: u64,
}

impl Bank {
    /// Currently open row, if any.
    pub fn open_row(&self) -> Option<usize> {
        self.open_row
    }

    /// Whether the bank is precharged (no open row).
    pub fn is_precharged(&self) -> bool {
        self.open_row.is_none()
    }

    /// The command this bank needs next in order to eventually serve a CAS
    /// to `row`.
    pub fn needed_command(&self, row: usize, is_read: bool) -> CommandKind {
        match self.open_row {
            None => CommandKind::Activate,
            Some(r) if r == row => {
                if is_read {
                    CommandKind::Read
                } else {
                    CommandKind::Write
                }
            }
            Some(_) => CommandKind::Precharge,
        }
    }

    /// Earliest cycle at which `kind` may issue, considering only bank-local
    /// constraints (rank-level constraints are layered on top).
    pub fn earliest(&self, kind: CommandKind) -> u64 {
        match kind {
            CommandKind::Activate => self.next_act,
            CommandKind::Precharge => self.next_pre,
            CommandKind::Read | CommandKind::Write => self.next_cas,
            CommandKind::Refresh => self.next_act,
        }
    }

    /// Whether `kind` targeting `row` is legal and timing-ready at `now`.
    pub fn can_issue(&self, kind: CommandKind, row: usize, now: u64) -> bool {
        if now < self.earliest(kind) {
            return false;
        }
        match kind {
            CommandKind::Activate => self.open_row.is_none(),
            CommandKind::Precharge => true,
            CommandKind::Read | CommandKind::Write => self.open_row == Some(row),
            CommandKind::Refresh => self.open_row.is_none(),
        }
    }

    /// Apply `cmd` at cycle `now`, updating bank-local timing state.
    /// With `auto_precharge`, CAS commands behave as RDA/WRA: the row
    /// closes once the restore window elapses.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the command is not issuable at `now`.
    pub fn issue(&mut self, cmd: &Command, now: u64, t: &Timing, auto_precharge: bool) {
        debug_assert!(
            self.can_issue(cmd.kind, cmd.row, now),
            "illegal {cmd:?} at {now}"
        );
        match cmd.kind {
            CommandKind::Activate => {
                self.open_row = Some(cmd.row);
                self.next_pre = self.next_pre.max(now + t.ras);
                self.next_cas = self.next_cas.max(now + t.rcd);
                self.next_act = self.next_act.max(now + t.rc);
            }
            CommandKind::Precharge => {
                self.open_row = None;
                self.next_act = self.next_act.max(now + t.rp);
            }
            CommandKind::Read => {
                self.next_pre = self.next_pre.max(now + t.rtp);
                if auto_precharge {
                    self.open_row = None;
                    self.next_act = self.next_act.max(now + t.rtp + t.rp);
                }
            }
            CommandKind::Write => {
                self.next_pre = self.next_pre.max(now + t.cwl + t.burst_cycles + t.wr);
                if auto_precharge {
                    self.open_row = None;
                    self.next_act = self
                        .next_act
                        .max(now + t.cwl + t.burst_cycles + t.wr + t.rp);
                }
            }
            CommandKind::Refresh => {
                self.next_act = self.next_act.max(now + t.rfc);
            }
        }
    }

    /// Block new activations until `cycle` (used for refresh, which stalls
    /// every bank in the rank).
    pub fn block_activates_until(&mut self, cycle: u64) {
        self.next_act = self.next_act.max(cycle);
    }

    /// Record a row-buffer outcome for statistics.
    pub fn record_outcome(&mut self, hit: bool, conflict: bool) {
        if hit {
            self.row_hits += 1;
        } else if conflict {
            self.row_conflicts += 1;
        } else {
            self.row_misses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Timing {
        Timing::ddr5_4800()
    }

    fn act(row: usize) -> Command {
        Command {
            kind: CommandKind::Activate,
            bank_group: 0,
            bank: 0,
            row,
            column: 0,
        }
    }

    fn rd(row: usize) -> Command {
        Command {
            kind: CommandKind::Read,
            bank_group: 0,
            bank: 0,
            row,
            column: 0,
        }
    }

    fn pre() -> Command {
        Command {
            kind: CommandKind::Precharge,
            bank_group: 0,
            bank: 0,
            row: 0,
            column: 0,
        }
    }

    #[test]
    fn act_then_read_respects_rcd() {
        let t = timing();
        let mut b = Bank::default();
        assert!(b.can_issue(CommandKind::Activate, 5, 0));
        b.issue(&act(5), 0, &t, false);
        assert!(!b.can_issue(CommandKind::Read, 5, t.rcd - 1));
        assert!(b.can_issue(CommandKind::Read, 5, t.rcd));
        b.issue(&rd(5), t.rcd, &t, false);
    }

    #[test]
    fn read_wrong_row_refused() {
        let t = timing();
        let mut b = Bank::default();
        b.issue(&act(5), 0, &t, false);
        assert!(!b.can_issue(CommandKind::Read, 6, t.rcd + 100));
        assert_eq!(b.needed_command(6, true), CommandKind::Precharge);
    }

    #[test]
    fn precharge_respects_ras_and_rtp() {
        let t = timing();
        let mut b = Bank::default();
        b.issue(&act(1), 0, &t, false);
        // PRE blocked until tRAS.
        assert!(!b.can_issue(CommandKind::Precharge, 0, t.ras - 1));
        assert!(b.can_issue(CommandKind::Precharge, 0, t.ras));
        b.issue(&rd(1), t.rcd, &t, false);
        // RTP pushes PRE out if later than RAS.
        let earliest = (t.ras).max(t.rcd + t.rtp);
        assert_eq!(b.earliest(CommandKind::Precharge), earliest);
    }

    #[test]
    fn act_to_act_respects_rc() {
        let t = timing();
        let mut b = Bank::default();
        b.issue(&act(1), 0, &t, false);
        b.issue(&pre(), t.ras, &t, false);
        assert!(!b.can_issue(CommandKind::Activate, 2, t.rc - 1));
        assert!(b.can_issue(CommandKind::Activate, 2, t.rc));
    }

    #[test]
    fn needed_command_transitions() {
        let t = timing();
        let mut b = Bank::default();
        assert_eq!(b.needed_command(3, true), CommandKind::Activate);
        b.issue(&act(3), 0, &t, false);
        assert_eq!(b.needed_command(3, true), CommandKind::Read);
        assert_eq!(b.needed_command(3, false), CommandKind::Write);
        assert_eq!(b.needed_command(4, true), CommandKind::Precharge);
    }
}
