//! Memory requests and responses.

use crate::addrmap::Location;

/// Monotonically increasing request identifier assigned by the caller.
pub type RequestId = u64;

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// 64 B read.
    Read,
    /// 64 B write.
    Write,
}

/// Which path a request takes through the memory system.
///
/// Host requests contend on the shared channel command/address and DQ buses.
/// NDP requests are generated inside the DIMM buffer chip of a specific rank
/// and use rank-local buses only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Conventional host-CPU access through the channel.
    Host,
    /// Rank-local access from the NDP unit in the DIMM buffer chip.
    Ndp,
}

/// One 64 B memory request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned identifier echoed in the [`Response`].
    pub id: RequestId,
    /// Read or write.
    pub kind: AccessKind,
    /// Physical byte address (64 B aligned internally).
    pub addr: u64,
    /// Access path.
    pub port: Port,
    /// Cycle at which the request entered the memory system (set on enqueue).
    pub arrival: u64,
    /// Decoded location (set on enqueue).
    pub loc: Location,
}

impl Request {
    /// Create a request. `arrival` and `loc` are filled in by
    /// [`crate::MemorySystem::enqueue`].
    pub fn new(id: RequestId, kind: AccessKind, addr: u64, port: Port) -> Self {
        Request {
            id,
            kind,
            addr,
            port,
            arrival: 0,
            loc: Location::default(),
        }
    }
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The identifier from the originating [`Request`].
    pub id: RequestId,
    /// Read or write.
    pub kind: AccessKind,
    /// Cycle the request entered the memory system.
    pub arrival: u64,
    /// Cycle the last data beat left the DRAM (completion time).
    pub finish: u64,
    /// Whether the access hit an already-open row.
    pub row_hit: bool,
}

impl Response {
    /// End-to-end memory latency in cycles.
    pub fn latency(&self) -> u64 {
        self.finish - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_latency() {
        let r = Response {
            id: 7,
            kind: AccessKind::Read,
            arrival: 100,
            finish: 188,
            row_hit: false,
        };
        assert_eq!(r.latency(), 88);
    }

    #[test]
    fn request_construction() {
        let r = Request::new(1, AccessKind::Write, 0xdead_beef, Port::Ndp);
        assert_eq!(r.id, 1);
        assert_eq!(r.kind, AccessKind::Write);
        assert_eq!(r.port, Port::Ndp);
    }
}
