//! DDR command set and command records.

use std::fmt;

/// The DDR commands the simulator issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Activate a row in a bank.
    Activate,
    /// Precharge one bank.
    Precharge,
    /// Column read (with auto data burst).
    Read,
    /// Column write.
    Write,
    /// All-bank refresh for one rank.
    Refresh,
}

impl CommandKind {
    /// Whether this command transfers data on the data bus.
    pub fn is_cas(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
            CommandKind::Refresh => "REF",
        };
        f.write_str(s)
    }
}

/// A fully-addressed command ready to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// Which command.
    pub kind: CommandKind,
    /// Bank group index within the rank.
    pub bank_group: usize,
    /// Bank index within the bank group.
    pub bank: usize,
    /// Row address (used by [`CommandKind::Activate`]).
    pub row: usize,
    /// Column (cacheline) address (used by CAS commands).
    pub column: usize,
}

impl Command {
    /// Flat bank index within the rank.
    pub fn flat_bank(&self, banks_per_group: usize) -> usize {
        self.bank_group * banks_per_group + self.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_classification() {
        assert!(CommandKind::Read.is_cas());
        assert!(CommandKind::Write.is_cas());
        assert!(!CommandKind::Activate.is_cas());
        assert!(!CommandKind::Precharge.is_cas());
        assert!(!CommandKind::Refresh.is_cas());
    }

    #[test]
    fn display_names() {
        assert_eq!(CommandKind::Activate.to_string(), "ACT");
        assert_eq!(CommandKind::Read.to_string(), "RD");
    }

    #[test]
    fn flat_bank_index() {
        let c = Command {
            kind: CommandKind::Read,
            bank_group: 3,
            bank: 1,
            row: 0,
            column: 0,
        };
        assert_eq!(c.flat_bank(4), 13);
    }
}
