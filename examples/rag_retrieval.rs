//! Retrieval-augmented-generation style workload: cosine-similarity text
//! embeddings (GloVe-like), where the paper's partial-dimension-only
//! early termination fails but the hybrid bit-level scheme works.
//!
//! ```text
//! cargo run --release --example rag_retrieval
//! ```

use ansmet::core::{EtConfig, EtEngine, EtOracle, FetchSchedule};
use ansmet::index::{ExactOracle, Hnsw, HnswParams};
use ansmet::vecdata::{brute_force_knn, recall_at_k, Metric, SynthSpec};

fn main() {
    // Text-embedding corpus: 100-dim FP32 under cosine similarity (the
    // preprocessing folds cosine to inner product on normalized vectors).
    let mut spec = SynthSpec::glove().scaled(8_000, 25);
    spec.metric = Metric::Cosine;
    let (corpus, questions) = spec.generate();
    println!(
        "corpus: {} passages × {} dims, search metric after normalization: {}",
        corpus.len(),
        corpus.dim(),
        corpus.metric()
    );

    let hnsw = Hnsw::build(&corpus, HnswParams::quick());

    // Partial-dimension-only ET (prior work): no fetch can be skipped,
    // because unfetched FP32 dimensions make the IP bound −∞.
    let dim_engine = EtEngine::new(
        &corpus,
        EtConfig::new(FetchSchedule::full_width(corpus.dtype())),
    );
    // ANSMET's hybrid bit-level ET.
    let bit_engine = EtEngine::new(
        &corpus,
        EtConfig::new(FetchSchedule::simple_heuristic(corpus.dtype())),
    );

    let mut recall = 0.0;
    let mut dim_oracle_lines = 0u64;
    let mut bit_oracle_lines = 0u64;
    let mut baseline = 0u64;
    for q in &questions {
        let mut dim_o = EtOracle::new(&dim_engine);
        let mut bit_o = EtOracle::new(&bit_engine);
        let mut exact = ExactOracle::new(&corpus);
        let top = hnsw.search(q, 5, 60, &mut exact);
        let a = hnsw.search(q, 5, 60, &mut dim_o);
        let b = hnsw.search(q, 5, 60, &mut bit_o);
        assert_eq!(top.ids(), a.ids());
        assert_eq!(top.ids(), b.ids());
        dim_oracle_lines += dim_o.lines;
        bit_oracle_lines += bit_o.lines;
        baseline += bit_o.baseline_lines();
        let (truth, _) = brute_force_knn(&corpus, q, 5);
        recall += recall_at_k(&top.ids(), &truth, 5);
    }
    println!("retrieval recall@5: {:.3}", recall / questions.len() as f64);
    println!(
        "fetched 64B lines — partial-dimension ET: {dim_oracle_lines}, hybrid bit-level ET: {bit_oracle_lines} (baseline {baseline})"
    );
    println!(
        "hybrid saves {:.1}% of traffic where dimension-level ET saves {:.1}% — the paper's IP observation",
        100.0 * (1.0 - bit_oracle_lines as f64 / baseline as f64),
        100.0 * (1.0 - dim_oracle_lines as f64 / baseline as f64),
    );
}
