//! Image-descriptor search (GIST-like, 960-dim FP32): the paper's best
//! case for ANSMET. Shows offline preprocessing — sampling, common-prefix
//! elimination, dual-granularity layout optimization, and the physical
//! transform — then compares fetch traffic.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use ansmet::core::{
    optimize_dual_schedule, EtConfig, EtEngine, EtOracle, PrefixSpec, SamplingConfig,
    SamplingProfile, TransformedDataset,
};
use ansmet::index::{DistanceOracle, Hnsw, HnswParams};
use ansmet::vecdata::SynthSpec;

fn main() {
    let (data, queries) = SynthSpec::gist().scaled(3_000, 10).generate();
    println!(
        "dataset: {} — {} × {} dims FP32, {} lines/vector naturally",
        data.name(),
        data.len(),
        data.dim(),
        data.vector_lines()
    );

    // Offline preprocessing (§4.2): sample 100 vectors.
    let profile = SamplingProfile::build(&data, &SamplingConfig::default());
    println!(
        "sampling: threshold {:.2}, mean termination at {:.1} bits, {:.0}% never terminate",
        profile.threshold,
        profile.mean_termination_bits().unwrap_or(f64::NAN),
        profile.never_frac * 100.0
    );

    // Outlier-aware common prefix elimination (0.1 % outlier budget).
    let prefix = PrefixSpec::choose(&data, &profile.sample_ids, 0.001);
    let stats = prefix.stats(&data);
    println!(
        "common prefix: {} bits eliminated, {:.2}% outlier elements, {:.1}% space saved",
        prefix.len(),
        stats.outlier_element_frac * 100.0,
        stats.saved_space_frac * 100.0
    );

    // Dual-granularity fetch optimization.
    let params = optimize_dual_schedule(
        data.dim(),
        data.dtype().bits(),
        prefix.len(),
        &profile.et_histogram,
        profile.never_frac,
    );
    let schedule = params.schedule(data.dtype(), prefix.len());
    println!(
        "schedule: n_C={} T_C={} n_F={} → steps {:?}",
        params.n_c,
        params.t_c,
        params.n_f,
        schedule.steps()
    );

    // Physical layout transform (the Table 4 preprocessing step).
    let t0 = std::time::Instant::now();
    let transformed = TransformedDataset::build(&data, schedule.clone());
    println!(
        "layout transform: {:.2} MB in {:.2} s",
        transformed.total_bytes() as f64 / 1e6,
        t0.elapsed().as_secs_f64()
    );

    // Online search with the optimized early termination.
    let hnsw = Hnsw::build(&data, HnswParams::quick());
    let et_cfg = if prefix.is_disabled() {
        EtConfig::new(schedule)
    } else {
        EtConfig::with_prefix(schedule, prefix)
    };
    let engine = EtEngine::new(&data, et_cfg);
    let mut oracle = EtOracle::new(&engine);
    for q in &queries {
        let top = hnsw.search(q, 10, 60, &mut oracle);
        assert_eq!(top.ids().len(), 10);
    }
    println!(
        "search: {} comparisons, {:.1}% early terminated, {:.1}% of baseline traffic ({} backup lines)",
        oracle.comparisons(),
        100.0 * oracle.pruned as f64 / oracle.comparisons() as f64,
        100.0 * oracle.lines as f64 / oracle.baseline_lines() as f64,
        oracle.backup_lines,
    );
}
