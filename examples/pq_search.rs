//! Product-quantization search with partial-element early termination
//! (§4.3 of the paper: "partial bits of the codewords are not useful,
//! but partial elements are beneficial").
//!
//! ```text
//! cargo run --release --example pq_search
//! ```

use ansmet::index::{PqParams, ProductQuantizer};
use ansmet::vecdata::{brute_force_knn, recall_at_k, SynthSpec};

fn main() {
    let (data, queries) = SynthSpec::deep().scaled(6_000, 20).generate();
    println!(
        "dataset: {} — {} × {} dims, {} B per vector uncompressed",
        data.name(),
        data.len(),
        data.dim(),
        data.vector_bytes()
    );

    // Train an 8-subspace, 256-codeword product quantizer.
    let pq = ProductQuantizer::train(&data, &PqParams::default());
    let codes: Vec<Vec<u16>> = (0..data.len()).map(|i| pq.encode(data.vector(i))).collect();
    println!(
        "pq: m={} k={} → {} B per vector ({}x compression), reconstruction MSE {:.6}",
        pq.m(),
        pq.k(),
        pq.m(),
        data.vector_bytes() / pq.m(),
        pq.reconstruction_mse(&data)
    );

    let mut recall = 0.0;
    let mut subspaces_read = 0u64;
    let mut subspaces_total = 0u64;
    for q in &queries {
        let table = pq.adc_table(q);
        // Exhaustive ADC scan with partial-element early termination:
        // keep a top-10 heap; abort a candidate once the memoized-prefix
        // lower bound crosses the current 10th-best.
        let mut heap = ansmet::index::MaxDistHeap::new(10);
        for (id, c) in codes.iter().enumerate() {
            let thr = heap.threshold();
            let (read, dist) = table.evaluate(c, thr);
            subspaces_read += read as u64;
            subspaces_total += pq.m() as u64;
            if let Some(d) = dist {
                heap.push(ansmet::index::Neighbor::new(d, id));
            }
        }
        let ids: Vec<usize> = heap.into_sorted().iter().map(|n| n.id).collect();
        let (truth, _) = brute_force_knn(&data, q, 10);
        recall += recall_at_k(&ids, &truth, 10);
    }
    println!(
        "pq-adc search: recall@10 = {:.3} (vs exact float search)",
        recall / queries.len() as f64
    );
    println!(
        "partial-element ET read {:.1}% of the memoized subspace distances",
        100.0 * subspaces_read as f64 / subspaces_total as f64
    );
}
