//! Quickstart: build an HNSW index over a synthetic SIFT-like dataset,
//! search it exactly and with lossless early termination, and show the
//! fetch savings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ansmet::core::{EtConfig, EtEngine, EtOracle, FetchSchedule};
use ansmet::index::{DistanceOracle, ExactOracle, Hnsw, HnswParams};
use ansmet::vecdata::{brute_force_knn, recall_at_k, SynthSpec};

fn main() {
    // 1. A SIFT-like dataset: 128-dim UINT8 vectors under L2.
    let (data, queries) = SynthSpec::sift().scaled(5_000, 20).generate();
    println!(
        "dataset: {} — {} vectors × {} dims ({}, {})",
        data.name(),
        data.len(),
        data.dim(),
        data.dtype(),
        data.metric()
    );

    // 2. Build the HNSW index (max degree 16, as in the paper).
    let hnsw = Hnsw::build(&data, HnswParams::quick());
    println!(
        "hnsw: {} layers, entry point {}",
        hnsw.layer_count(),
        hnsw.entry_point()
    );

    // 3. Search with the exact oracle and measure recall.
    let mut exact = ExactOracle::new(&data);
    let mut recall = 0.0;
    for q in &queries {
        let (truth, _) = brute_force_knn(&data, q, 10);
        let r = hnsw.search(q, 10, 80, &mut exact);
        recall += recall_at_k(&r.ids(), &truth, 10);
    }
    println!(
        "exact search: recall@10 = {:.3} ({} comparisons)",
        recall / queries.len() as f64,
        exact.comparisons()
    );

    // 4. The same searches through the hybrid early-termination engine:
    //    identical results, fewer 64 B fetches.
    let engine = EtEngine::new(
        &data,
        EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
    );
    let mut et = EtOracle::new(&engine);
    for q in &queries {
        let _ = hnsw.search(q, 10, 80, &mut et);
    }
    println!(
        "early termination: {} of {} comparisons pruned, {} lines fetched vs {} baseline ({:.1}% saved)",
        et.pruned,
        et.comparisons(),
        et.lines,
        et.baseline_lines(),
        100.0 * (1.0 - et.lines as f64 / et.baseline_lines() as f64)
    );

    // 5. Verify losslessness: both oracles return the same neighbors.
    let mut exact2 = ExactOracle::new(&data);
    let mut et2 = EtOracle::new(&engine);
    let a = hnsw.search(&queries[0], 10, 80, &mut exact2);
    let b = hnsw.search(&queries[0], 10, 80, &mut et2);
    assert_eq!(a.ids(), b.ids(), "early termination must be lossless");
    println!("losslessness check passed: identical top-10 for query 0");
}
