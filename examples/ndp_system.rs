//! Full-system simulation: run the paper's designs over one workload on
//! the cycle-level DDR5 + NDP model and print speedups, the latency
//! breakdown, and energy.
//!
//! ```text
//! cargo run --release --example ndp_system
//! ```

use ansmet::sim::{run_design, Design, SystemConfig, SystemEnergyModel, Workload};
use ansmet::vecdata::SynthSpec;

fn main() {
    let wl = Workload::prepare(&SynthSpec::deep().scaled(4_000, 4), 10, None);
    println!(
        "workload: {} ({} comparisons/query, {:.0}% rejected, recall {:.3}, ef {})",
        wl.name,
        wl.mean_evals_per_query(),
        wl.mean_rejection_rate() * 100.0,
        wl.recall,
        wl.ef
    );

    let cfg = SystemConfig::default();
    let energy_model = SystemEnergyModel::default();
    let base = run_design(Design::CpuBase, &wl, &cfg);
    let base_energy = energy_model.compute(&base, &cfg).total_nj();

    println!(
        "\n{:<12} {:>9} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "design", "speedup", "energy", "traversal", "dist comp", "collect", "pruned"
    );
    for d in Design::all() {
        let r = run_design(d, &wl, &cfg);
        let e = energy_model.compute(&r, &cfg).total_nj();
        println!(
            "{:<12} {:>8.2}x {:>8.3} {:>9.1}% {:>9.1}% {:>7.1}% {:>7.1}%",
            d.label(),
            base.total_cycles as f64 / r.total_cycles as f64,
            e / base_energy,
            100.0 * r.breakdown.traversal as f64 / r.total_cycles as f64,
            100.0 * r.breakdown.dist_comp as f64 / r.total_cycles as f64,
            100.0 * r.breakdown.result_collect as f64 / r.total_cycles as f64,
            100.0 * r.pruned_evals as f64 / r.total_evals.max(1) as f64,
        );
    }

    let opt = run_design(Design::NdpEtOpt, &wl, &cfg);
    println!(
        "\nNDP-ETOpt fetch utilization: {:.1}% (NDP-Base: {:.1}%)",
        opt.fetch_utilization() * 100.0,
        run_design(Design::NdpBase, &wl, &cfg).fetch_utilization() * 100.0
    );
}
