//! Integration tests for the fault-injection subsystem: searches that
//! survive stalled units, hung units, dropped instructions, and corrupted
//! or lost QSHR results must return top-k results bit-identical to a
//! fault-free run — recovery costs cycles, never accuracy.

use std::sync::OnceLock;

use ansmet_faults::{FaultEvent, FaultKind, FaultPlan, FaultRates};
use ansmet_host::RetryPolicy;
use ansmet_sim::{run_degraded, SystemConfig, Workload};
use ansmet_vecdata::SynthSpec;

fn workload() -> &'static Workload {
    static WL: OnceLock<Workload> = OnceLock::new();
    WL.get_or_init(|| Workload::prepare(&SynthSpec::sift().scaled(500, 3), 10, Some(40)))
}

/// The acceptance scenario: a stalled unit, a corrupted QSHR result, and
/// a dropped instruction in one plan. The run completes without
/// panicking, reports nonzero retry/fallback counters, and produces
/// top-k results identical to the faults-disabled run.
#[test]
fn mixed_fault_plan_recovers_exactly() {
    let wl = workload();
    let cfg = SystemConfig::default();
    let retry = RetryPolicy::default_ndp();
    let clean = run_degraded(wl, &cfg, FaultPlan::none(), retry);
    assert!(!clean.report.any_recovery());

    // Hit the first ranks' earliest operations so the faults are certain
    // to land inside this workload's comparison stream.
    let mut events = Vec::new();
    for rank in 0..4 {
        for at in 0..4 {
            events.push(FaultEvent {
                rank,
                at,
                kind: FaultKind::Stall { cycles: 1_000_000 }, // beyond any deadline
            });
            events.push(FaultEvent {
                rank,
                at,
                kind: FaultKind::CorruptResult {
                    bit: (2 * 8 + at as u16) % 512, // inside slot 0's value bytes
                },
            });
            events.push(FaultEvent {
                rank,
                at: at + 4,
                kind: FaultKind::DropInstruction,
            });
        }
    }
    let plan = FaultPlan::new(events);
    assert!(!plan.is_empty());

    let faulty = run_degraded(wl, &cfg, plan, retry);
    let r = &faulty.report;
    assert!(r.injected.stalls > 0, "stalls must fire: {r:?}");
    assert!(
        r.injected.corrupted_results > 0,
        "corruption must fire: {r:?}"
    );
    assert!(
        r.injected.dropped_instructions > 0,
        "drops must fire: {r:?}"
    );
    assert!(r.timeouts > 0, "{r:?}");
    assert!(r.crc_rejections > 0, "{r:?}");
    assert!(r.retries > 0, "{r:?}");
    assert!(r.retries + r.host_fallbacks > 0, "{r:?}");
    assert!(r.added_latency_cycles > 0, "{r:?}");

    assert_eq!(faulty.results, clean.results, "recovery must be exact");
    assert_eq!(faulty.recall, clean.recall);
}

/// Retries exhausted on a dead rank: the host fallback keeps results
/// exact even when the NDP path never answers.
#[test]
fn dead_ranks_degrade_to_host_without_accuracy_loss() {
    let wl = workload();
    let cfg = SystemConfig::default();
    let retry = RetryPolicy::no_retries();
    let clean = run_degraded(wl, &cfg, FaultPlan::none(), retry);
    // Hang every early compute on half the ranks.
    let mut events = Vec::new();
    for rank in 0..cfg.ndp_units() / 2 {
        for at in 0..32 {
            events.push(FaultEvent {
                rank,
                at,
                kind: FaultKind::Hang,
            });
        }
    }
    let faulty = run_degraded(wl, &cfg, FaultPlan::new(events), retry);
    assert!(faulty.report.host_fallbacks > 0);
    assert_eq!(faulty.report.retries, 0, "no-retries policy");
    assert_eq!(faulty.results, clean.results);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For arbitrary seed-generated fault schedules (covering every
        /// fault kind at mixed rates), the recovered search results equal
        /// the fault-free oracle exactly.
        fn recovered_results_match_fault_free_oracle(
            seed in 0u64..10_000,
            ops in 16u64..128,
        ) {
            let wl = workload();
            let cfg = SystemConfig::default();
            let retry = RetryPolicy::default_ndp();
            let clean = run_degraded(wl, &cfg, FaultPlan::none(), retry);
            let plan = FaultPlan::random(seed, cfg.ndp_units(), ops, FaultRates::mixed());
            let faulty = run_degraded(wl, &cfg, plan, retry);
            prop_assert_eq!(&faulty.results, &clean.results);
            prop_assert!(
                faulty.report.injected.total() == 0 || faulty.report.added_latency_cycles > 0,
                "injected faults must cost latency: {:?}",
                faulty.report
            );
        }
    }
}
