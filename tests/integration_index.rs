//! Cross-crate integration tests for the index substrates against exact
//! ground truth.

use ansmet::index::{DistanceOracle, ExactOracle, Hnsw, HnswParams, Ivf, IvfParams};
use ansmet::vecdata::{recall::mean_recall_at_k, GroundTruth, SynthSpec};

#[test]
fn hnsw_recall_across_metrics() {
    for spec in [SynthSpec::sift(), SynthSpec::glove(), SynthSpec::spacev()] {
        let (data, queries) = spec.scaled(900, 8).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let gt = GroundTruth::compute(&data, &queries, 10);
        let mut oracle = ExactOracle::new(&data);
        let results: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| hnsw.search(q, 10, 100, &mut oracle).ids())
            .collect();
        let recall = mean_recall_at_k(&results, &gt.ids, 10);
        assert!(
            recall >= 0.8,
            "dataset {}: recall {recall} below the paper's 80% bar",
            data.name()
        );
    }
}

#[test]
fn ivf_recall_grows_with_nprobe() {
    let (data, queries) = SynthSpec::sift().scaled(900, 6).generate();
    let ivf = Ivf::build(&data, IvfParams::default());
    let gt = GroundTruth::compute(&data, &queries, 10);
    let recall_at = |nprobe: usize| {
        let mut oracle = ExactOracle::new(&data);
        let results: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| ivf.search(q, 10, nprobe, &mut oracle).ids())
            .collect();
        mean_recall_at_k(&results, &gt.ids, 10)
    };
    let lo = recall_at(1);
    let hi = recall_at(ivf.n_lists());
    assert!(hi >= lo);
    assert!((hi - 1.0).abs() < 1e-9, "full probe must be exact");
}

#[test]
fn traces_are_replayable_and_consistent() {
    let (data, queries) = SynthSpec::deep().scaled(600, 4).generate();
    let hnsw = Hnsw::build(&data, HnswParams::quick());
    for q in &queries {
        let mut o1 = ExactOracle::new(&data);
        let mut o2 = ExactOracle::new(&data);
        let (r1, trace) = hnsw.search_traced(q, 10, 60, &mut o1);
        let r2 = hnsw.search(q, 10, 60, &mut o2);
        assert_eq!(r1.ids(), r2.ids(), "tracing must not perturb the search");
        // Replay invariant: accepted evals in the trace are exactly the
        // evals whose recorded distance beats the recorded threshold.
        for e in trace.iter_evals() {
            assert_eq!(e.accepted, e.distance < e.threshold);
        }
        // Every accepted base-layer eval's distance must bound the final
        // results: the k-th result distance is ≤ the largest accepted.
        assert!(trace.total_evals() as u64 == o1.comparisons());
    }
}
