//! The paper's own worked examples, executed literally.
//!
//! These tests pin the implementation to the numerical examples printed
//! in the paper's text and figures, so any semantic drift in the
//! encoding, bounds, or layout shows up as a failing example rather than
//! a statistical regression.

use ansmet::core::{DistanceBounder, ValueInterval};
use ansmet::vecdata::{ElemType, Metric};

/// §4 opening example: partial vector (1, 2, x₂, x₃) against query
/// (4, −2, 6, −1). The Euclidean lower bound is √((4−1)² + (−2−2)²) = 5,
/// attained at x₂ = 6 and x₃ = −1.
#[test]
fn section4_partial_dimension_bound() {
    let b = DistanceBounder::new(Metric::L2);
    let ivs = [
        ValueInterval::exact(1.0),
        ValueInterval::exact(2.0),
        ValueInterval::full_range(ElemType::F32),
        ValueInterval::full_range(ElemType::F32),
    ];
    let lb = b.lower_bound(&ivs, &[4.0, -2.0, 6.0, -1.0]);
    assert_eq!(lb.sqrt(), 5.0);
    // The bound is attained: the full vector (1, 2, 6, −1) has exactly
    // this distance.
    let exact = b.exact_distance(&[1.0, 2.0, 6.0, -1.0], &[4.0, -2.0, 6.0, -1.0]);
    assert_eq!(exact, lb);
}

/// §1 partial-bit example: "the minimum distance between 00__₂ and 0110₂
/// is obtained when the missing bits are 11₂" — i.e. the candidate is
/// 0011₂ = 3 against the query 0110₂ = 6, distance 3.
#[test]
fn section1_partial_bit_missing_bits_rule() {
    // Model 4-bit unsigned values in the top nibble of U8.
    let iv = ValueInterval::from_prefix(ElemType::U8, 0b00, 2 + 4); // 00 + 4 shifted bits... top nibble prefix 0b0000_00
                                                                    // Simpler: values 0..=255, prefix "0000 00" (6 bits) → interval [0, 3].
    assert_eq!(iv.lo, 0.0);
    assert_eq!(iv.hi, 3.0);
    let b = DistanceBounder::new(Metric::L2);
    // Query element 6: nearest point of [0, 3] is 3 → (6−3)² = 9.
    assert_eq!(b.contribution(iv, 6.0), 9.0);
}

/// Fig. 2's full workflow: 4 vectors of 2 dims, 4-bit elements, query
/// Q = (0010₂, 0010₂) = (2, 2), top-2 search. S3 = (0011₂, 1101₂) is
/// early-terminated after its second 2-bit fetch because its bound
/// exceeds d(Q, S0) = √5 ≈ 2.236 — saving two of four fetches.
#[test]
fn figure2_early_termination_walkthrough() {
    use ansmet::core::{EtConfig, EtEngine, FetchSchedule};
    use ansmet::vecdata::Dataset;

    // 4-bit elements modeled in the low nibble of U8; the schedule
    // fetches 2 bits per step over the 8-bit storage, so the two paper
    // fetch steps correspond to steps 2 and 3 (the top 4 stored bits are
    // the zero padding of the nibble).
    let values = vec![
        0.0, 1.0, // S0 = (0000, 0001)
        3.0, 0.0, // S1 = (0011, 0000)
        0.0, 0.0, // S2 = (0000, 0000)
        3.0, 13.0, // S3 = (0011, 1101)
    ];
    let data = Dataset::from_values("fig2", ElemType::U8, Metric::L2, 2, values);
    let engine = EtEngine::new(
        &data,
        EtConfig::new(FetchSchedule::uniform(data.dtype(), 2)),
    );
    let query = vec![2.0, 2.0];

    // Threshold = d(Q, S0)² = (2−0)² + (2−1)² = 5 (the paper uses the
    // root, 2.236; we work in squared space).
    let s0 = data.distance_to(0, &query);
    assert_eq!(s0, 5.0);

    // S3's true distance exceeds the threshold…
    let s3 = data.distance_to(3, &query);
    assert_eq!(s3, 1.0 + 121.0);
    // …and the engine terminates it early, saving fetches.
    let cost = engine.evaluate(3, &query, s0);
    assert!(cost.pruned, "S3 must be early terminated");
    assert!(
        cost.lines < engine.full_lines(),
        "termination must save part of the {} fetches",
        engine.full_lines()
    );

    // S1 = (3, 0) has distance 1 + 4 = 5 — not strictly inside, rejected
    // only at the full comparison; S2 = (0, 0) has distance 8 > 5.
    let c1 = engine.evaluate(1, &query, s0);
    assert_eq!(c1.distance, Some(5.0));

    // And the final top-2 of the exact search is {S0, S1} — the paper's
    // result set (S1 at distance 5 ties the threshold; Fig. 2 keeps it).
    let (ids, _) = ansmet::vecdata::brute_force_knn(&data, &query, 2);
    assert_eq!(ids, vec![0, 1]);
}

/// §4.1 missing-bit rule for the Euclidean metric, as stated: for query
/// 0101₂, the partially fetched 01__₂ completes to 0101₂ (match), 00__₂
/// to 0011₂ (fetched smaller → all ones), 11__₂ to 1100₂ (fetched larger
/// → all zeros).
#[test]
fn section41_missing_bit_completion_rule() {
    let b = DistanceBounder::new(Metric::L2);
    let q = 0b0101 as f32; // 5
                           // Model 4-bit values via a 4-bit prefix over U8's top nibble; the low
                           // nibble is zero for all stored values, so intervals are [p·16, p·16+15].
                           // To stay in pure 4-bit space, use prefixes of length 6 on U8
                           // (values 0..=3 per bucket of 4).
    let cases = [
        (0b01u32, 4.0f32, 7.0f32),   // 01__ → [4, 7], q = 5 inside → contribution 0
        (0b00u32, 0.0f32, 3.0f32),   // 00__ → [0, 3], nearest = 3 (all ones)
        (0b11u32, 12.0f32, 15.0f32), // 11__ → [12, 15], nearest = 12 (all zeros)
    ];
    for (prefix, lo, hi) in cases {
        // Prefix length 6 on 8-bit storage leaves 2 free bits → buckets
        // of four values, matching the paper's 4-bit example.
        let iv = ValueInterval::from_prefix(ElemType::U8, prefix, 2 + 4);
        assert_eq!(iv.lo, lo);
        assert_eq!(iv.hi, hi);
        let contrib = b.contribution(iv, q);
        match prefix {
            0b01 => assert_eq!(contrib, 0.0, "query inside the interval"),
            0b00 => assert_eq!(contrib, ((q - iv.hi) * (q - iv.hi)) as f64),
            0b11 => assert_eq!(contrib, ((iv.lo - q) * (iv.lo - q)) as f64),
            _ => unreachable!(),
        }
    }
}

/// §5.3 arithmetic: splitting a 128-dim FP32 vector into eight chunks
/// gives eight 64 B accesses performed in parallel.
#[test]
fn section53_vertical_partition_arithmetic() {
    use ansmet::ndp::{PartitionScheme, Partitioner};
    let p = Partitioner::new(PartitionScheme::Vertical, 8, 128, 4);
    assert_eq!(p.subvectors_per_vector(), 8);
    let pl = p.placement(0);
    for q in &pl {
        assert_eq!(q.dims.len() * 4, 64, "each chunk is one 64 B access");
    }
}

/// §3 arithmetic-intensity observation: a 128-dim FP16 vector is 256 B
/// (4 lines); the natural layout of Table 2's datasets.
#[test]
fn section3_vector_sizes() {
    use ansmet::vecdata::Dataset;
    let d = Dataset::from_values("s", ElemType::F16, Metric::L2, 128, vec![0.0; 128]);
    assert_eq!(d.vector_bytes(), 256);
    assert_eq!(d.vector_lines(), 4);
}
