//! The tracing & metrics layer must be invisible and deterministic:
//! a no-op sink leaves results bit-identical to the uninstrumented
//! replay, recordings are byte-stable across reruns and thread counts,
//! and every query's phase spans sum exactly to its end-to-end cycles.

use ansmet::obs::{attribution_check, perfetto_trace_json, QueryRecorder, RecorderConfig};
use ansmet::sim::{
    run_design, run_design_traced, Design, Parallelism, SystemConfig, TraceOptions, Workload,
};
use ansmet::vecdata::SynthSpec;

fn workload() -> Workload {
    Workload::prepare(&SynthSpec::sift().scaled(600, 6), 10, Some(40))
}

fn cfg(threads: usize) -> SystemConfig {
    SystemConfig {
        parallelism: Parallelism::Threads(threads),
        ..SystemConfig::default()
    }
}

/// Serialize a recording to its two export formats (the byte-stability
/// contract is stated at the export boundary).
fn exports(rec: &ansmet::obs::FlightRecorder, mem_clock_mhz: u64) -> (String, String) {
    let refs: Vec<&ansmet::obs::QueryTrace> = rec.queries.iter().collect();
    (
        perfetto_trace_json(&refs, mem_clock_mhz),
        rec.metrics.to_json(),
    )
}

/// Tracing observes the replay, never steers it: the traced run's
/// `RunResult` equals the untraced one field-for-field.
#[test]
fn noop_gating_traced_equals_untraced() {
    let wl = workload();
    let cfg = cfg(1);
    for design in [Design::CpuEt, Design::NdpEtOpt] {
        let plain = run_design(design, &wl, &cfg);
        let (traced, _) = run_design_traced(design, &wl, &cfg, &TraceOptions::default());
        assert_eq!(plain, traced, "{design:?} steered by instrumentation");
    }
}

/// Two identical runs produce byte-identical trace and metrics exports.
#[test]
fn recording_is_bit_identical_across_reruns() {
    let wl = workload();
    let cfg = cfg(1);
    let opts = TraceOptions {
        dram_commands: true,
        ..TraceOptions::default()
    };
    let (_, a) = run_design_traced(Design::NdpEtOpt, &wl, &cfg, &opts);
    let (_, b) = run_design_traced(Design::NdpEtOpt, &wl, &cfg, &opts);
    assert_eq!(
        exports(&a, cfg.dram.clock_mhz),
        exports(&b, cfg.dram.clock_mhz)
    );
}

/// Worker-thread count must not leak into the recording: per-query
/// shards merge in query order.
#[test]
fn recording_is_bit_identical_across_thread_counts() {
    let wl = workload();
    let opts = TraceOptions::default();
    let (r1, a) = run_design_traced(Design::NdpEtOpt, &wl, &cfg(1), &opts);
    let (r4, b) = run_design_traced(Design::NdpEtOpt, &wl, &cfg(4), &opts);
    assert_eq!(r1, r4, "RunResult diverged across thread counts");
    let mem_clock = cfg(1).dram.clock_mhz;
    assert_eq!(exports(&a, mem_clock), exports(&b, mem_clock));
}

/// Attribution exactness: every recorded query's phase spans tile its
/// end-to-end latency, and the recorded total matches the breakdown.
#[test]
fn phase_spans_sum_to_total_cycles_for_every_query() {
    let wl = workload();
    let cfg = cfg(2);
    for design in [
        Design::NdpBase,
        Design::NdpEt,
        Design::NdpEtOpt,
        Design::CpuEt,
    ] {
        let (run, rec) = run_design_traced(design, &wl, &cfg, &TraceOptions::default());
        assert_eq!(rec.queries.len(), wl.traces.len());
        let refs: Vec<&ansmet::obs::QueryTrace> = rec.queries.iter().collect();
        if let Err((q, attributed, total)) = attribution_check(&refs) {
            panic!("{design:?} query {q}: attributed {attributed} != total {total}");
        }
        let recorded: u64 = rec.queries.iter().map(|t| t.total_cycles).sum();
        assert_eq!(recorded, run.total_cycles, "{design:?} totals diverged");
    }
}

/// The serving tier's sink hooks are also pure observers: a recording
/// sink leaves the report identical to the plain run, while capturing
/// queue/execute spans and batch events.
#[test]
fn serve_sink_observes_without_steering() {
    use ansmet::serve::{run_serve, run_serve_with_sink, ServeConfig};

    let wl = workload();
    let cfg = cfg(1);
    let serve = ServeConfig::open_loop(7, 40_000.0, 30, 2_000_000);
    let plain = run_serve(&wl, &cfg, &serve);
    let mut rec = QueryRecorder::new(0, RecorderConfig::default());
    let observed = run_serve_with_sink(&wl, &cfg, &serve, &mut rec);
    assert_eq!(plain, observed, "serving report steered by instrumentation");
    let trace = rec.finish(plain.makespan_cycles);
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.phase == ansmet::obs::Phase::Execute),
        "no execute spans recorded"
    );
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e.kind, ansmet::obs::EventKind::BatchFormed { .. })),
        "no batch events recorded"
    );
    assert_eq!(trace.metrics.counter("serve.completed"), plain.completed());
}
