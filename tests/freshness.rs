//! Cross-crate freshness properties: recall under churn never falls
//! meaningfully below a fresh rebuild over the same live set, early
//! termination stays bit-identical to exact search on mutated indexes,
//! and search scratch survives mutations without re-allocating.

use std::sync::OnceLock;

use ansmet::core::EtEngine;
use ansmet::freshness::{FreshEtOracle, LayoutArtifacts, MutableIndex};
use ansmet::index::{ExactOracle, HnswParams, SearchScratch};
use ansmet::vecdata::{Dataset, SynthSpec};

/// Churn recall may trail the fresh rebuild by at most this much.
const RECALL_EPS: f64 = 0.05;
const K: usize = 10;
const EF: usize = 80;
const LEVEL_SEED: u64 = 41;

struct Fixture {
    base: MutableIndex,
    pending: Vec<Vec<f32>>,
    queries: Vec<Vec<f32>>,
}

/// Shared 300-vector base index plus a 60-vector held-out insert pool.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (data, queries) = SynthSpec::sift().scaled(360, 4).generate();
        let pending = (300..360).map(|i| data.vector(i).to_vec()).collect();
        let base = Dataset::from_values(
            "churn-base",
            data.dtype(),
            data.metric(),
            data.dim(),
            (0..300).flat_map(|i| data.vector(i).to_vec()).collect(),
        );
        Fixture {
            base: MutableIndex::build_hnsw(base, HnswParams::quick(), LEVEL_SEED),
            pending,
            queries,
        }
    })
}

/// Apply a seeded churn burst: `inserts` from the pool, then `deletes`
/// spread over the live set, then (optionally) a compaction.
fn churn(idx: &mut MutableIndex, seed: u64, inserts: usize, deletes: usize, compact: bool) {
    let f = fixture();
    for i in 0..inserts {
        idx.insert(&f.pending[(seed as usize + i) % f.pending.len()]);
    }
    let mut x = seed | 1;
    for _ in 0..deletes {
        if idx.live_len() <= K + 2 {
            break;
        }
        // xorshift victim draw over live ids only.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let rank = (x % idx.live_len() as u64) as usize;
        let victim = (0..idx.len())
            .filter(|&id| idx.is_live(id))
            .nth(rank)
            .expect("rank bounded by live count");
        assert!(idx.delete(victim));
    }
    if compact {
        idx.compact();
    }
}

fn mean_recall(results: &[Vec<usize>], truth: &[Vec<usize>]) -> f64 {
    let mut acc = 0.0;
    for (got, want) in results.iter().zip(truth) {
        acc += got.iter().filter(|id| want.contains(id)).count() as f64 / want.len().max(1) as f64;
    }
    acc / results.len().max(1) as f64
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Search-after-{insert,delete,compact} recall never drops below
        /// the recall of an index freshly rebuilt over the identical live
        /// set, minus a fixed epsilon.
        fn churned_recall_tracks_a_fresh_rebuild(
            seed in 0u64..10_000,
            inserts in 1usize..60,
            deletes in 0usize..40,
            compact in 0u32..2,
        ) {
            let f = fixture();
            let mut idx = f.base.clone();
            churn(&mut idx, seed, inserts, deletes, compact == 1);

            let truth: Vec<Vec<usize>> = f
                .queries
                .iter()
                .map(|q| idx.live_ground_truth(q, K))
                .collect();
            let churned: Vec<Vec<usize>> = f
                .queries
                .iter()
                .map(|q| idx.search_exact(q, K, EF).ids())
                .collect();

            // Fresh rebuild over exactly the live vectors.
            let live = idx.live_ids();
            let data = idx.data();
            let compacted = Dataset::from_values(
                "rebuild",
                data.dtype(),
                data.metric(),
                data.dim(),
                live.iter().flat_map(|&id| data.vector(id).to_vec()).collect(),
            );
            let rebuilt =
                MutableIndex::build_hnsw(compacted, HnswParams::quick(), LEVEL_SEED);
            let statics: Vec<Vec<usize>> = f
                .queries
                .iter()
                .map(|q| {
                    rebuilt
                        .search_exact(q, K, EF)
                        .ids()
                        .into_iter()
                        .map(|local| live[local])
                        .collect()
                })
                .collect();

            let r_churn = mean_recall(&churned, &truth);
            let r_static = mean_recall(&statics, &truth);
            prop_assert!(
                r_churn >= r_static - RECALL_EPS,
                "churn recall {r_churn:.4} fell more than {RECALL_EPS} below rebuild {r_static:.4} \
                 (seed {seed}, +{inserts}/-{deletes}, compact {compact})"
            );
        }

        /// ET-on and ET-off return bit-identical ids on mutated indexes,
        /// both before and after epoch re-validation.
        fn et_is_bit_identical_on_mutated_indexes(
            seed in 0u64..10_000,
            inserts in 1usize..60,
            deletes in 0usize..40,
        ) {
            let f = fixture();
            let mut idx = f.base.clone();
            let mut layout = LayoutArtifacts::plan(&idx, 0.01);
            churn(&mut idx, seed, inserts, deletes, false);

            // Pass 1: the stale plan — fresh inserts served conservatively.
            {
                let engine = EtEngine::new(idx.data(), layout.et_config());
                let mut scratch = SearchScratch::new(idx.len());
                for q in &f.queries {
                    let mut et = FreshEtOracle::new(&engine, idx.conservative_flags());
                    let with_et = idx.search_with(q, K, EF, &mut et, &mut scratch);
                    let mut exact = ExactOracle::new(idx.data());
                    let without = idx.search_with(q, K, EF, &mut exact, &mut scratch);
                    prop_assert_eq!(
                        with_et.ids(),
                        without.ids(),
                        "ET diverged on the stale plan (seed {}, +{}/-{})",
                        seed,
                        inserts,
                        deletes
                    );
                }
            }

            // Pass 2: after compaction + re-validation (possibly re-planned).
            idx.compact();
            layout.revalidate(&mut idx, 0.02);
            let engine = EtEngine::new(idx.data(), layout.et_config());
            let mut scratch = SearchScratch::new(idx.len());
            for q in &f.queries {
                let mut et = FreshEtOracle::new(&engine, idx.conservative_flags());
                let with_et = idx.search_with(q, K, EF, &mut et, &mut scratch);
                let mut exact = ExactOracle::new(idx.data());
                let without = idx.search_with(q, K, EF, &mut exact, &mut scratch);
                prop_assert_eq!(
                    with_et.ids(),
                    without.ids(),
                    "ET diverged after re-validation (seed {}, +{}/-{})",
                    seed,
                    inserts,
                    deletes
                );
            }
        }
    }
}

/// Regression: one scratch allocation serves searches across inserts,
/// deletes, and compaction — the generation sync must resize in place
/// from its headroom, never re-allocate.
#[test]
fn scratch_survives_churn_without_reallocating() {
    let f = fixture();
    let mut idx = f.base.clone();
    let mut scratch = SearchScratch::with_headroom(idx.len(), f.pending.len().max(64));
    let mut oracle = ExactOracle::new(idx.data());
    idx.search_with(&f.queries[0], K, EF, &mut oracle, &mut scratch);

    for (i, v) in f.pending.iter().enumerate() {
        idx.insert(v);
        if i % 2 == 0 {
            idx.delete(i * 3 % 250);
        }
        let mut oracle = ExactOracle::new(idx.data());
        let r = idx.search_with(
            &f.queries[i % f.queries.len()],
            K,
            EF,
            &mut oracle,
            &mut scratch,
        );
        assert_eq!(r.ids().len(), K);
    }
    idx.compact();
    let mut oracle = ExactOracle::new(idx.data());
    idx.search_with(&f.queries[0], K, EF, &mut oracle, &mut scratch);
    assert_eq!(
        scratch.reallocations(),
        0,
        "scratch must grow from headroom, not re-allocate, across churn"
    );
}
