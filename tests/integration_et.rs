//! Cross-crate integration tests for the early-termination algorithm:
//! losslessness end-to-end across datasets, schedules, and prefix
//! elimination.

use ansmet::core::{
    optimize_dual_schedule, EtConfig, EtEngine, EtOracle, FetchSchedule, PrefixSpec,
    SamplingConfig, SamplingProfile,
};
use ansmet::index::{ExactOracle, Hnsw, HnswParams, Ivf, IvfParams};
use ansmet::vecdata::SynthSpec;

/// Every dataset profile × the simple schedule: search results are
/// bit-identical to exact search, and traffic shrinks.
#[test]
fn lossless_across_all_datasets() {
    for spec in SynthSpec::all_paper_datasets() {
        let (data, queries) = spec.scaled(600, 3).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
        );
        for q in &queries {
            let mut exact = ExactOracle::new(&data);
            let mut et = EtOracle::new(&engine);
            let a = hnsw.search(q, 10, 50, &mut exact);
            let b = hnsw.search(q, 10, 50, &mut et);
            assert_eq!(a.ids(), b.ids(), "dataset {}", data.name());
            assert!(
                et.lines <= et.baseline_lines(),
                "dataset {}: ET may not fetch more than baseline",
                data.name()
            );
        }
    }
}

/// The fully-optimized pipeline (sampling → prefix → dual schedule) is
/// also lossless, including the outlier backup path.
#[test]
fn lossless_with_optimized_layout() {
    let (data, queries) = SynthSpec::gist().scaled(500, 3).generate();
    let profile = SamplingProfile::build(&data, &SamplingConfig::default().with_samples(60));
    let prefix = PrefixSpec::choose(&data, &profile.sample_ids, 0.001);
    let params = optimize_dual_schedule(
        data.dim(),
        data.dtype().bits(),
        prefix.len(),
        &profile.et_histogram,
        profile.never_frac,
    );
    let sched = params.schedule(data.dtype(), prefix.len());
    let cfg = if prefix.is_disabled() {
        EtConfig::new(sched)
    } else {
        EtConfig::with_prefix(sched, prefix)
    };
    let engine = EtEngine::new(&data, cfg);
    let hnsw = Hnsw::build(&data, HnswParams::quick());
    for q in &queries {
        let mut exact = ExactOracle::new(&data);
        let mut et = EtOracle::new(&engine);
        let a = hnsw.search(q, 10, 40, &mut exact);
        let b = hnsw.search(q, 10, 40, &mut et);
        assert_eq!(a.ids(), b.ids());
    }
}

/// Early termination also applies to cluster-based indexes (§4.1 "early
/// termination also applies to other indexes including cluster-based").
#[test]
fn lossless_on_ivf() {
    let (data, queries) = SynthSpec::sift().scaled(600, 3).generate();
    let ivf = Ivf::build(&data, IvfParams::default());
    let engine = EtEngine::new(
        &data,
        EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
    );
    let nprobe = (ivf.n_lists() / 3).max(1);
    for q in &queries {
        let mut exact = ExactOracle::new(&data);
        let mut et = EtOracle::new(&engine);
        let a = ivf.search(q, 10, nprobe, &mut exact);
        let b = ivf.search(q, 10, nprobe, &mut et);
        assert_eq!(a.ids(), b.ids());
        assert!(et.pruned > 0, "IVF scans should prune heavily");
    }
}

/// Tighter beam widths (smaller k′) terminate earlier — the Fig. 8
/// observation that ET is more effective at small k′.
#[test]
fn smaller_ef_prunes_more() {
    let (data, queries) = SynthSpec::deep().scaled(800, 4).generate();
    let hnsw = Hnsw::build(&data, HnswParams::quick());
    let engine = EtEngine::new(
        &data,
        EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
    );
    let frac = |ef: usize| -> f64 {
        let mut o = EtOracle::new(&engine);
        for q in &queries {
            let _ = hnsw.search(q, 10, ef, &mut o);
        }
        o.lines as f64 / o.baseline_lines() as f64
    };
    let tight = frac(12);
    let loose = frac(120);
    assert!(
        tight <= loose + 0.05,
        "tight beams should fetch proportionally less: {tight} vs {loose}"
    );
}

/// FP16 and BF16 storage (§5.1: the QSHR holds 256-dim FP16 queries) —
/// early termination stays lossless on half-precision datasets.
#[test]
fn lossless_on_half_precision() {
    use ansmet::vecdata::ElemType;
    for dtype in [ElemType::F16, ElemType::Bf16] {
        let (data, queries) = SynthSpec::deep()
            .with_dtype(dtype)
            .scaled(400, 3)
            .generate();
        assert_eq!(data.dtype(), dtype);
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let engine = EtEngine::new(&data, EtConfig::new(FetchSchedule::simple_heuristic(dtype)));
        for q in &queries {
            let mut exact = ExactOracle::new(&data);
            let mut et = EtOracle::new(&engine);
            let a = hnsw.search(q, 10, 40, &mut exact);
            let b = hnsw.search(q, 10, 40, &mut et);
            assert_eq!(a.ids(), b.ids(), "dtype {dtype}");
        }
    }
}

/// Exact brute-force k-NN with ET returns the exhaustive answer
/// (§4.1: usable "in accurate search algorithms like kmeans and kNN").
#[test]
fn exact_scan_is_exact() {
    use ansmet::core::et_knn;
    use ansmet::vecdata::brute_force_knn;
    let (data, queries) = SynthSpec::gist().scaled(250, 3).generate();
    let engine = EtEngine::new(
        &data,
        EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
    );
    for q in &queries {
        let (truth, _) = brute_force_knn(&data, q, 10);
        let scan = et_knn(&engine, q, 10);
        assert_eq!(scan.ids, truth);
        assert!(scan.traffic_fraction() < 1.0);
    }
}
