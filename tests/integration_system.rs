//! Full-system integration tests: the paper's headline shapes must hold
//! on the timing substrate.

use ansmet::ndp::PartitionScheme;
use ansmet::sim::{run_design, Design, SystemConfig, SystemEnergyModel, Workload};
use ansmet::vecdata::SynthSpec;

fn workload() -> Workload {
    Workload::prepare(&SynthSpec::deep().scaled(800, 3), 10, Some(50))
}

#[test]
fn ndp_speedup_over_cpu() {
    let wl = workload();
    let cfg = SystemConfig::default();
    let cpu = run_design(Design::CpuBase, &wl, &cfg);
    let ndp = run_design(Design::NdpBase, &wl, &cfg);
    let speedup = cpu.total_cycles as f64 / ndp.total_cycles as f64;
    assert!(speedup > 1.5, "NDP speedup only {speedup:.2}x");
}

#[test]
fn et_opt_beats_ndp_base() {
    let wl = workload();
    let cfg = SystemConfig::default();
    let base = run_design(Design::NdpBase, &wl, &cfg);
    let opt = run_design(Design::NdpEtOpt, &wl, &cfg);
    assert!(opt.total_lines() < base.total_lines());
    assert!(
        (opt.total_cycles as f64) < base.total_cycles as f64 * 1.02,
        "{} vs {}",
        opt.total_cycles,
        base.total_cycles
    );
    assert!(opt.fetch_utilization() >= base.fetch_utilization());
}

#[test]
fn dim_et_useless_on_ip_fp32() {
    // The paper: partial-dimension ET "does not work for the datasets
    // with the inner-product metric".
    let wl = Workload::prepare(&SynthSpec::glove().scaled(700, 3), 10, Some(50));
    let cfg = SystemConfig::default();
    let base = run_design(Design::NdpBase, &wl, &cfg);
    let dim = run_design(Design::NdpDimEt, &wl, &cfg);
    assert_eq!(
        dim.pruned_evals, 0,
        "IP/FP32 admits no dimension-level prune"
    );
    assert_eq!(dim.total_lines(), base.total_lines());
    // But the hybrid bit-level scheme does prune.
    let et = run_design(Design::NdpEt, &wl, &cfg);
    assert!(et.pruned_evals > 0);
    assert!(et.total_lines() < base.total_lines());
}

#[test]
fn adaptive_polling_beats_conventional() {
    let wl = workload();
    let conv = run_design(
        Design::NdpEtOpt,
        &wl,
        &SystemConfig::default().with_conventional_polling(),
    );
    let adapt = run_design(Design::NdpEtOpt, &wl, &SystemConfig::default());
    assert!(
        adapt.breakdown.result_collect <= conv.breakdown.result_collect,
        "adaptive {} vs conventional {}",
        adapt.breakdown.result_collect,
        conv.breakdown.result_collect
    );
}

#[test]
fn scaling_improves_with_more_units() {
    let wl = workload();
    let r8 = run_design(
        Design::NdpEtOpt,
        &wl,
        &SystemConfig::default().with_ndp_units(8),
    );
    let r32 = run_design(
        Design::NdpEtOpt,
        &wl,
        &SystemConfig::default().with_ndp_units(32),
    );
    // Single-stream latency saturates once per-hop parallelism (≤ 16
    // neighbor comparisons) is absorbed; allow a small tolerance. The
    // Table 3 throughput scaling uses concurrent query streams.
    assert!(
        r32.total_cycles as f64 <= r8.total_cycles as f64 * 1.10,
        "32 units ({}) should not be slower than 8 ({})",
        r32.total_cycles,
        r8.total_cycles
    );
}

#[test]
fn partitioning_schemes_all_run() {
    let wl = Workload::prepare(&SynthSpec::gist().scaled(300, 2), 10, Some(30));
    for scheme in [
        PartitionScheme::Vertical,
        PartitionScheme::Horizontal,
        PartitionScheme::Hybrid { subvec_bytes: 1024 },
    ] {
        let cfg = SystemConfig::default().with_partition(scheme);
        let r = run_design(Design::NdpEtOpt, &wl, &cfg);
        assert!(r.total_cycles > 0);
        assert_eq!(r.queries, 2);
    }
}

#[test]
fn energy_ordering_matches_paper() {
    let wl = workload();
    let cfg = SystemConfig::default();
    let model = SystemEnergyModel::default();
    let cpu = model.compute(&run_design(Design::CpuBase, &wl, &cfg), &cfg);
    let ndp = model.compute(&run_design(Design::NdpBase, &wl, &cfg), &cfg);
    let opt = model.compute(&run_design(Design::NdpEtOpt, &wl, &cfg), &cfg);
    assert!(ndp.total_nj() < cpu.total_nj(), "NDP must save energy");
    assert!(
        opt.total_nj() <= ndp.total_nj() * 1.05,
        "ET must not cost energy"
    );
}

#[test]
fn replication_reduces_imbalance() {
    let wl = Workload::prepare(&SynthSpec::gist().scaled(400, 3), 10, Some(40));
    let imbalance = |replicate: bool| {
        let cfg = SystemConfig {
            replicate_hot: replicate,
            ..SystemConfig::default()
        };
        let r = run_design(Design::NdpBase, &wl, &cfg);
        let max = *r.rank_loads.iter().max().unwrap_or(&0) as f64;
        let avg = r.rank_loads.iter().sum::<u64>() as f64 / r.rank_loads.len() as f64;
        max / avg.max(1.0)
    };
    let without = imbalance(false);
    let with = imbalance(true);
    assert!(
        with <= without + 0.05,
        "replication should not worsen imbalance: {with:.2} vs {without:.2}"
    );
}
