//! Snapshot round-trip tests against a committed on-disk fixture:
//! clean save/load is byte-stable, a single flipped byte surfaces as a
//! typed checksum error, torn writes are detected and recovered through
//! the fallback path, and the committed v1 fixture still loads (format
//! drift guard).
//!
//! Regenerate the fixture with
//! `cargo test -p ansmet --test freshness_snapshot -- --ignored`.

use std::path::PathBuf;

use ansmet::freshness::{
    load, load_with_fallback, save, EpochMeta, LayoutArtifacts, MutableIndex, SnapshotError,
};
use ansmet::index::HnswParams;
use ansmet::vecdata::{Dataset, ElemType, Metric};
use ansmet_faults::snapshot::{corruption_offset, flip_byte, torn_tail};

const FIXTURE: &str = "tests/fixtures/freshness_v1.snap";

/// The exact state the committed fixture was built from: a tiny dim-8
/// F16/L2 dataset (LCG values), 40 base vectors, 6 streamed inserts,
/// 3 deletes, one compaction.
fn fixture_state() -> (MutableIndex, LayoutArtifacts, EpochMeta) {
    let dim = 8;
    let n = 48;
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut val = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x >> 40) as f64 / (1u64 << 24) as f64) as f32 * 4.0 - 2.0
    };
    let values: Vec<f32> = (0..n * dim).map(|_| val()).collect();
    let base: Vec<f32> = values[..40 * dim].to_vec();
    let pending: Vec<Vec<f32>> = (40..n)
        .map(|i| values[i * dim..(i + 1) * dim].to_vec())
        .collect();

    let data = Dataset::from_values("snap-fixture", ElemType::F16, Metric::L2, dim, base);
    let mut idx = MutableIndex::build_hnsw(data, HnswParams::quick(), 7);
    let mut layout = LayoutArtifacts::plan(&idx, 0.05);
    for v in &pending {
        idx.insert(v);
    }
    for id in [3, 11, 29] {
        idx.delete(id);
    }
    idx.compact();
    layout.revalidate(&mut idx, 1.0);
    let meta = EpochMeta {
        epoch: 1,
        last_epoch_cycle: 123_456,
    };
    (idx, layout, meta)
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../")
        .join(FIXTURE)
}

#[test]
fn clean_save_load_is_byte_stable() {
    let (idx, layout, meta) = fixture_state();
    let a = save(&idx, &layout, &meta);
    let b = save(&idx, &layout, &meta);
    assert_eq!(a, b, "two saves of identical state must be byte-identical");

    let snap = load(&a).expect("clean snapshot loads");
    assert_eq!(snap.meta, meta);
    assert_eq!(snap.index.live_len(), idx.live_len());
    assert_eq!(snap.index.generation(), idx.generation());
    let resaved = save(&snap.index, &snap.layout, &snap.meta);
    assert_eq!(a, resaved, "save(load(x)) must reproduce x byte for byte");
}

#[test]
fn every_flipped_byte_is_a_typed_error() {
    let (idx, layout, meta) = fixture_state();
    let blob = save(&idx, &layout, &meta);
    for seed in 0..16u64 {
        let mut corrupt = blob.clone();
        let off = corruption_offset(seed, corrupt.len());
        flip_byte(&mut corrupt, off, 0x20);
        let err = load(&corrupt).expect_err("corruption must not load silently");
        // Any typed error is acceptable (header fields fail shape checks
        // before the checksum is even computed); silent success is not.
        match err {
            SnapshotError::ChecksumMismatch { expected, actual } => {
                assert_ne!(expected, actual)
            }
            SnapshotError::BadMagic { .. }
            | SnapshotError::UnsupportedVersion { .. }
            | SnapshotError::Torn { .. }
            | SnapshotError::Truncated { .. }
            | SnapshotError::Malformed { .. } => {}
        }
    }
}

#[test]
fn torn_write_is_recovered_from_the_fallback() {
    let (idx, layout, meta) = fixture_state();
    let blob = save(&idx, &layout, &meta);
    let torn = torn_tail(&blob, blob.len() / 3);
    assert!(matches!(
        load(&torn),
        Err(SnapshotError::Torn { .. } | SnapshotError::Truncated { .. })
    ));
    let (snap, used_fallback) =
        load_with_fallback(&torn, &blob).expect("fallback snapshot must recover");
    assert!(used_fallback);
    assert_eq!(snap.index.live_len(), idx.live_len());
}

#[test]
fn committed_v1_fixture_still_loads() {
    let bytes = std::fs::read(fixture_path())
        .expect("committed fixture present (regenerate with -- --ignored)");
    let snap = load(&bytes).expect("v1 fixture must keep loading");
    let (idx, layout, meta) = fixture_state();
    assert_eq!(snap.meta, meta);
    assert_eq!(snap.index.live_len(), idx.live_len());
    assert_eq!(snap.index.generation(), idx.generation());
    // The current encoder must still produce the committed bytes — any
    // format change requires a version bump, not a silent rewrite.
    assert_eq!(
        save(&idx, &layout, &meta),
        bytes,
        "snapshot format drifted without a version bump"
    );
    // And the restored index answers searches identically.
    let q: Vec<f32> = (0..8).map(|i| i as f32 * 0.25 - 1.0).collect();
    assert_eq!(
        snap.index.search_exact(&q, 5, 32).ids(),
        idx.search_exact(&q, 5, 32).ids()
    );
}

/// Writes the fixture; run explicitly after an intentional format bump.
#[test]
#[ignore = "regenerates the committed fixture"]
fn regenerate_fixture() {
    let (idx, layout, meta) = fixture_state();
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixtures dir");
    std::fs::write(&path, save(&idx, &layout, &meta)).expect("write fixture");
}
