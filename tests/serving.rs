//! End-to-end contracts of the online serving subsystem:
//!
//! * the full report — text and JSON — is bit-identical across runs and
//!   across host thread counts (seeded arrivals, event-ordered loop,
//!   integer histograms);
//! * fault injection inflates tail latency but never changes which
//!   neighbors a served query returns (same results fingerprint);
//! * overload engages admission control: queries shed, the report says
//!   so, and rates stay in bounds;
//! * SLO attainment behaves at the extremes (generous SLO at light load
//!   is met; attainment is always a valid fraction).

use ansmet::serve::{run_serve, AdmissionConfig, FaultProfile, ServeConfig};
use ansmet::sim::{SystemConfig, Workload};
use ansmet::vecdata::SynthSpec;
use ansmet_faults::FaultRates;
use ansmet_host::RetryPolicy;

fn small_workload() -> Workload {
    Workload::prepare(&SynthSpec::sift().scaled(1500, 4), 10, Some(40))
}

/// A no-shed config: queue depth effectively unbounded, no deadline, so
/// every offered query completes regardless of how slow recovery gets.
fn no_shed(mut cfg: ServeConfig) -> ServeConfig {
    cfg.admission = AdmissionConfig {
        max_queue_depth: usize::MAX,
        deadline_cycles: None,
    };
    cfg
}

#[test]
fn report_bit_identical_across_runs_and_thread_counts() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    let cfg = ServeConfig::open_loop(0xD1CE, 200_000.0, 60, 1_000_000);

    ansmet::sim::set_default_threads(1);
    let serial = run_serve(&wl, &sys, &cfg);
    let serial_again = run_serve(&wl, &sys, &cfg);
    ansmet::sim::set_default_threads(4);
    let parallel = run_serve(&wl, &sys, &cfg);
    ansmet::sim::set_default_threads(1);

    assert_eq!(serial, serial_again, "rerun diverged");
    assert_eq!(serial, parallel, "thread default changed the report");
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.render("t"), parallel.render("t"));
}

#[test]
fn faults_inflate_tail_latency_but_not_results() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    let base = no_shed(ServeConfig::open_loop(0xBEEF, 150_000.0, 80, 2_000_000));

    let clean = run_serve(&wl, &sys, &base);
    let faulted_cfg = base.clone().with_faults(FaultProfile {
        rates: FaultRates::mixed(),
        seed: 0xFA11,
        retry: RetryPolicy::default_ndp(),
    });
    let faulted = run_serve(&wl, &sys, &faulted_cfg);

    // Nothing shed on either side, so both runs served every arrival.
    assert_eq!(clean.shed(), 0);
    assert_eq!(faulted.shed(), 0);
    assert_eq!(clean.completed(), faulted.completed());

    // Recovery happened and is visible in the tail…
    let rec = faulted.recovery.as_ref().expect("fault run has recovery");
    assert!(rec.injected.total() > 0, "no faults fired");
    assert!(rec.added_latency_cycles > 0, "recovery added no latency");
    assert!(
        faulted.total.p99 > clean.total.p99,
        "p99 {} !> clean {}",
        faulted.total.p99,
        clean.total.p99
    );
    assert!(faulted.total.max > clean.total.max);

    // …but the answers are the ones the clean run returned.
    assert_eq!(
        clean.results_fingerprint, faulted.results_fingerprint,
        "faults changed returned neighbors"
    );
    assert!(clean.recovery.is_none());
}

#[test]
fn overload_sheds_and_stays_in_bounds() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    // Absurd offered load into a tiny queue: backpressure must engage.
    let mut cfg = ServeConfig::open_loop(7, 1e9, 120, 50_000);
    cfg.admission = AdmissionConfig {
        max_queue_depth: 4,
        deadline_cycles: Some(30_000),
    };
    let report = run_serve(&wl, &sys, &cfg);

    assert!(report.shed() > 0, "overload must shed");
    assert_eq!(report.completed() + report.shed(), report.offered());
    assert!(report.shed_rate() > 0.0 && report.shed_rate() <= 1.0);
    assert!(report.completed() > 0, "some queries must still be served");
    assert!((0.0..=1.0).contains(&report.slo_attainment()));
    let json = report.to_json();
    assert!(json.contains("\"shed\""));
    assert!(json.contains("\"shed_rate\""));
}

#[test]
fn generous_slo_at_light_load_is_fully_attained() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    // Light load, SLO far beyond any plausible completion time.
    let cfg = ServeConfig::open_loop(3, 20_000.0, 40, u64::MAX / 2);
    let report = run_serve(&wl, &sys, &cfg);

    assert_eq!(report.shed(), 0);
    assert_eq!(report.completed(), report.offered());
    assert!(
        (report.slo_attainment() - 1.0).abs() < 1e-12,
        "attainment {}",
        report.slo_attainment()
    );
    for t in &report.tenants {
        assert!((t.slo_attainment() - 1.0).abs() < 1e-12);
    }
}
