//! End-to-end contracts of the streaming operations plane:
//!
//! * the `ops` experiment's artifacts — `BENCH_ops.json` and the
//!   Prometheus exposition — are bit-identical across reruns and across
//!   host thread counts;
//! * attaching an [`OpsPlane`] to a serving run never changes the served
//!   results (the sink observes, it does not steer);
//! * scheduled maintenance pauses surface as `CompactionPause` events
//!   and queueing delay without changing which neighbors are returned.
//!
//! [`OpsPlane`]: ansmet::obs::OpsPlane

use ansmet::obs::{OpsConfig, OpsPlane};
use ansmet::serve::{run_serve, run_serve_with_sink, MaintenancePlan, ServeConfig};
use ansmet::sim::{SystemConfig, Workload};
use ansmet::vecdata::SynthSpec;
use ansmet_bench::{ops_experiment, Scale};

fn small_workload() -> Workload {
    Workload::prepare(&SynthSpec::sift().scaled(1500, 4), 10, Some(40))
}

#[test]
fn ops_artifacts_bit_identical_across_runs_and_thread_counts() {
    ansmet::sim::set_default_threads(1);
    let (t1, j1, e1) = ops_experiment(Scale::Quick);
    let (t2, j2, e2) = ops_experiment(Scale::Quick);
    ansmet::sim::set_default_threads(4);
    let (t3, j3, e3) = ops_experiment(Scale::Quick);
    ansmet::sim::set_default_threads(1);

    assert_eq!(t1, t2, "rerun diverged (text)");
    assert_eq!(j1, j2, "rerun diverged (json)");
    assert_eq!(e1, e2, "rerun diverged (exposition)");
    assert_eq!(t1, t3, "thread default changed the text report");
    assert_eq!(j1, j3, "thread default changed the json artifact");
    assert_eq!(e1, e3, "thread default changed the exposition");
}

#[test]
fn ops_plane_observes_without_steering() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    let cfg = ServeConfig::open_loop(0x0B5E, 200_000.0, 60, 1_000_000);

    let untraced = run_serve(&wl, &sys, &cfg);
    let mut plane = OpsPlane::new(OpsConfig::default());
    let traced = run_serve_with_sink(&wl, &sys, &cfg, &mut plane);
    assert_eq!(untraced, traced, "the ops plane must not steer the run");

    let report = plane.finish();
    assert_eq!(report.completed, traced.total.count);
    assert_eq!(
        report.series.counter_total("ops.completed"),
        traced.total.count
    );
}

#[test]
fn maintenance_pauses_surface_without_changing_results() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    let base = ServeConfig::open_loop(0xD1CE, 150_000.0, 60, 2_000_000);
    let paused = base.clone().with_maintenance(MaintenancePlan {
        interval_cycles: 400_000,
        pause_cycles: 200_000,
    });

    let clean = run_serve(&wl, &sys, &base);
    let mut plane = OpsPlane::new(OpsConfig::default());
    let with_pauses = run_serve_with_sink(&wl, &sys, &paused, &mut plane);
    let report = plane.finish();

    assert_eq!(
        clean.results_fingerprint, with_pauses.results_fingerprint,
        "maintenance pauses must not change served results"
    );
    assert!(
        report.series.counter_total("ops.compaction_pauses") > 0,
        "the cadence must fire at least one pause in this run"
    );
    assert!(
        with_pauses.makespan_cycles >= clean.makespan_cycles,
        "pauses can only stretch the run"
    );
}
