//! The query-parallel timing replay must be invisible: any worker-thread
//! count has to produce bit-identical aggregate results, because queries
//! are independent traces replayed on private memory-system state and
//! merged in query order.

use ansmet::sim::experiment::Scale;
use ansmet::sim::{run_design, Design, Parallelism, SystemConfig, Workload};
use ansmet::vecdata::SynthSpec;

/// `run_design` with 4 worker threads returns exactly the serial result —
/// every field of [`ansmet::sim::RunResult`], including per-rank command
/// counts and load counters — across a representative design slice.
#[test]
fn run_design_bit_identical_across_thread_counts() {
    let wl = Workload::prepare(&SynthSpec::sift().scaled(600, 6), 10, Some(40));
    for design in [Design::CpuEt, Design::NdpBase, Design::NdpEtOpt] {
        let serial_cfg = SystemConfig {
            parallelism: Parallelism::Threads(1),
            ..SystemConfig::default()
        };
        let parallel_cfg = SystemConfig {
            parallelism: Parallelism::Threads(4),
            ..SystemConfig::default()
        };
        let serial = run_design(design, &wl, &serial_cfg);
        let parallel = run_design(design, &wl, &parallel_cfg);
        assert_eq!(serial, parallel, "{design:?} diverged across thread counts");
    }
}

/// More workers than queries must degrade gracefully (workers beyond the
/// query count simply find the work list empty).
#[test]
fn more_threads_than_queries_is_identical() {
    let wl = Workload::prepare(&SynthSpec::sift().scaled(400, 2), 10, Some(30));
    let serial_cfg = SystemConfig {
        parallelism: Parallelism::Threads(1),
        ..SystemConfig::default()
    };
    let wide_cfg = SystemConfig {
        parallelism: Parallelism::Threads(16),
        ..SystemConfig::default()
    };
    assert_eq!(
        run_design(Design::NdpEt, &wl, &serial_cfg),
        run_design(Design::NdpEt, &wl, &wide_cfg),
    );
}

/// Full quick-scale experiment reports — recall, latency breakdowns,
/// speedups, fault-recovery accounting — must not change with the
/// process-wide thread default. `faults` and `fig6` cover the degraded
/// path and the headline latency comparison respectively.
///
/// Both probes live in one test because `set_default_threads` is a
/// process-wide knob and the harness runs tests concurrently.
#[test]
fn quick_experiments_identical_across_thread_defaults() {
    use ansmet::sim::experiment as e;

    ansmet::sim::set_default_threads(1);
    let faults_serial = e::faults(Scale::Quick);
    let fig6_serial = e::fig6(Scale::Quick, &[10]);

    ansmet::sim::set_default_threads(4);
    let faults_parallel = e::faults(Scale::Quick);
    let fig6_parallel = e::fig6(Scale::Quick, &[10]);
    ansmet::sim::set_default_threads(1);

    assert_eq!(faults_serial, faults_parallel, "faults report diverged");
    assert_eq!(fig6_serial, fig6_parallel, "fig6 report diverged");
}
