//! End-to-end contracts of the fleet-resilience layer:
//!
//! * a scripted rank-group storm never changes which neighbors a served
//!   query returns — the results fingerprint matches the fault-free run;
//! * the circuit breaker opens during the storm and closes after
//!   recovery, observable both in the resilience report and as obs
//!   events on the serving clock;
//! * hedged offloads lower the during-storm p99 versus breakers alone;
//! * brownout admission engages on detected capacity loss;
//! * the `resilience` experiment artifact is byte-identical across host
//!   thread counts;
//! * storm and fault scripts round-trip through their JSON fixtures.

use ansmet::serve::{
    run_serve, run_serve_with_sink, AdmissionConfig, ResilienceConfig, ServeConfig, ServeReport,
    StormProfile,
};
use ansmet::sim::{SystemConfig, Workload};
use ansmet::vecdata::SynthSpec;
use ansmet_faults::{FaultPlan, StormKind, StormPlan};
use ansmet_host::RetryPolicy;
use ansmet_obs::{EventKind, TraceSink};

fn small_workload() -> Workload {
    Workload::prepare(&SynthSpec::sift().scaled(1500, 4), 10, Some(40))
}

/// A no-shed config: every offered query completes, so served-results
/// fingerprints are comparable across passes.
fn no_shed(mut cfg: ServeConfig) -> ServeConfig {
    cfg.admission = AdmissionConfig {
        max_queue_depth: usize::MAX,
        deadline_cycles: None,
    };
    cfg
}

/// A storm profile hanging rank group 0 over `[start, end)`.
fn outage(start: u64, end: u64) -> StormProfile {
    StormProfile {
        plan: StormPlan::single_group_outage(0, start, end),
        retry: RetryPolicy::default_ndp(),
    }
}

/// Sink collecting `(cycle, event-name)` pairs.
#[derive(Default)]
struct EventLog {
    events: Vec<(u64, &'static str)>,
}

impl EventLog {
    fn cycles_of(&self, name: &str) -> Vec<u64> {
        self.events
            .iter()
            .filter(|(_, n)| *n == name)
            .map(|(c, _)| *c)
            .collect()
    }
}

impl TraceSink for EventLog {
    fn enabled(&self) -> bool {
        true
    }
    fn event(&mut self, cycle: u64, kind: EventKind) {
        self.events.push((cycle, kind.name()));
    }
}

/// p99 total latency of the queries that arrived during the storm.
fn during_p99(r: &ServeReport) -> u64 {
    r.resilience
        .as_ref()
        .and_then(|res| res.storm)
        .expect("storm run carries storm windows")
        .during
        .p99_cycles
}

#[test]
fn storm_changes_timing_never_results_and_breakers_cycle() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    let base = no_shed(ServeConfig::open_loop(0xD00F, 150_000.0, 80, 2_000_000));

    let clean = run_serve(&wl, &sys, &base);
    // Storm envelope: the second quarter of the fault-free makespan, so
    // arrivals continue well past the recovery instant.
    let (start, end) = (clean.makespan_cycles / 4, clean.makespan_cycles / 2);
    let cfg = base
        .clone()
        .with_storm(outage(start, end))
        .with_resilience(ResilienceConfig::default());
    let mut log = EventLog::default();
    let stormed = run_serve_with_sink(&wl, &sys, &cfg, &mut log);

    // Zero accuracy loss: same served set, same answers.
    assert_eq!(stormed.shed(), 0);
    assert_eq!(clean.completed(), stormed.completed());
    assert_eq!(
        clean.results_fingerprint, stormed.results_fingerprint,
        "storm changed returned neighbors"
    );

    // The breaker tripped during the storm and closed after recovery.
    let res = stormed.resilience.as_ref().expect("resilience configured");
    assert!(res.breaker_opens > 0, "breaker never opened");
    assert!(res.breaker_closes > 0, "breaker never closed");
    let opens = log.cycles_of("breaker_open");
    let closes = log.cycles_of("breaker_close");
    assert!(
        opens.iter().any(|&c| c >= start && c < end),
        "no breaker_open event inside the storm window [{start}, {end}): {opens:?}"
    );
    assert!(
        closes.iter().any(|&c| c >= end),
        "no breaker_close event at or after recovery {end}: {closes:?}"
    );
    assert!(!log.cycles_of("breaker_half_open").is_empty(), "no probes");

    // Storm windows and MTTR are reported.
    let st = res.storm.expect("storm windows");
    assert_eq!((st.start_cycle, st.end_cycle), (start, end));
    assert!(st.mttr_cycles.is_some(), "no close after recovery");
    assert!(res.fast_reroutes + res.fast_fallbacks > 0, "no fast paths");

    // Brownout tracked the open breaker even though nothing was shed.
    assert!(res.brownout_max_level >= 1, "brownout never engaged");
    assert!(!log.cycles_of("brownout").is_empty());
    assert_eq!(res.brownout_sheds, 0, "no-shed config must not shed");

    // The storm cost cycles.
    let rec = stormed.recovery.as_ref().expect("recovery counters");
    assert!(rec.timeouts > 0);
    assert!(rec.added_latency_cycles > 0);
    assert!(stormed.makespan_cycles >= clean.makespan_cycles);
}

#[test]
fn hedging_lowers_during_storm_p99() {
    let wl = small_workload();
    let sys = SystemConfig::default();
    let base = no_shed(ServeConfig::open_loop(0xD00F, 150_000.0, 80, 2_000_000));
    let clean = run_serve(&wl, &sys, &base);
    let storm = outage(clean.makespan_cycles / 4, clean.makespan_cycles / 2);

    let unhedged = run_serve(
        &wl,
        &sys,
        &base
            .clone()
            .with_storm(storm.clone())
            .with_resilience(ResilienceConfig::without_hedging()),
    );
    let hedged = run_serve(
        &wl,
        &sys,
        &base
            .clone()
            .with_storm(storm)
            .with_resilience(ResilienceConfig::default()),
    );

    let rec = hedged.recovery.as_ref().expect("recovery counters");
    assert!(rec.hedges > 0, "no hedges issued");
    assert!(rec.hedge_wins > 0, "no hedge ever won");
    assert_eq!(
        unhedged.recovery.as_ref().expect("recovery").hedges,
        0,
        "hedging disabled must not hedge"
    );

    assert!(
        during_p99(&hedged) < during_p99(&unhedged),
        "hedging must lower during-storm p99: hedged {} !< unhedged {}",
        during_p99(&hedged),
        during_p99(&unhedged),
    );

    // Both mitigations serve the same answers as each other.
    assert_eq!(hedged.results_fingerprint, unhedged.results_fingerprint);
    assert_eq!(hedged.results_fingerprint, clean.results_fingerprint);
}

#[test]
fn resilience_experiment_byte_stable_across_thread_counts() {
    use ansmet::sim::experiment::Scale;

    ansmet::sim::set_default_threads(1);
    let (t1, j1) = ansmet::serve::resilience_experiment(Scale::Quick);
    ansmet::sim::set_default_threads(4);
    let (t2, j2) = ansmet::serve::resilience_experiment(Scale::Quick);
    ansmet::sim::set_default_threads(1);

    assert_eq!(t1, t2, "text report diverged across thread counts");
    assert_eq!(j1, j2, "json artifact diverged across thread counts");
    assert!(j1.contains("\"experiment\": \"resilience\""));
    assert!(j1.contains("\"fingerprints_identical\": true"));
}

#[test]
fn storm_and_fault_fixtures_round_trip() {
    let src = include_str!("fixtures/storm_plan.json");
    let plan = StormPlan::from_json(src.trim()).expect("fixture parses");
    assert_eq!(plan.to_json(), src.trim(), "fixture is in canonical form");
    assert_eq!(plan.windows().len(), 2);
    assert_eq!(plan.fault_at(0, 100_000), Some(StormKind::Hang));
    assert_eq!(
        plan.fault_at(2, 300_000),
        Some(StormKind::Stall { cycles: 1_500 })
    );
    assert_eq!(plan.fault_at(0, 900_000), None, "recovery is exclusive");
    assert_eq!(plan.span(), Some((100_000, 900_000)));

    let fsrc = include_str!("fixtures/fault_plan.json");
    let fplan = FaultPlan::from_json(fsrc.trim()).expect("fixture parses");
    assert_eq!(fplan.to_json(), fsrc.trim(), "fixture is in canonical form");
    assert_eq!(fplan.events().len(), 6);
}
