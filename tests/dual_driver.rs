//! Cycle-for-cycle equivalence of the two NDP batch time-stepping
//! drivers: the event-wheel scheduler (production) and the per-cycle
//! tick reference. Full-pipeline runs — HNSW and IVF traversal, early
//! termination on and off, fault recovery under serving — must produce
//! identical results and identical flight recordings (including the
//! DRAM command stream) under either driver.

use std::sync::Mutex;

use ansmet::obs::FlightRecorder;
use ansmet::serve::{run_serve, FaultProfile, ServeConfig};
use ansmet::sim::workload::IndexKind;
use ansmet::sim::{
    run_design_traced, set_batch_driver, BatchDriver, Design, RunResult, SystemConfig,
    TraceOptions, Workload,
};
use ansmet::vecdata::SynthSpec;
use ansmet_faults::FaultRates;
use ansmet_host::RetryPolicy;

/// The driver selector is process-global; tests that flip it must not
/// interleave.
static DRIVER_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` once per driver and return both outcomes, restoring the
/// default (wheel) driver afterwards.
fn under_both_drivers<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = DRIVER_LOCK.lock().expect("driver lock poisoned");
    set_batch_driver(BatchDriver::Wheel);
    let wheel = f();
    set_batch_driver(BatchDriver::Tick);
    let tick = f();
    set_batch_driver(BatchDriver::Wheel);
    (wheel, tick)
}

/// Traced run (DRAM commands on) so the assertion covers the exact
/// command stream, not just aggregate cycle counts.
fn traced(design: Design, wl: &Workload, cfg: &SystemConfig) -> (RunResult, FlightRecorder) {
    let opts = TraceOptions {
        dram_commands: true,
        ..TraceOptions::default()
    };
    run_design_traced(design, wl, cfg, &opts)
}

fn assert_drivers_agree(wl: &Workload, designs: &[Design]) {
    let cfg = SystemConfig::default();
    for &design in designs {
        let ((rw, recw), (rt, rect)) = under_both_drivers(|| traced(design, wl, &cfg));
        assert_eq!(rw, rt, "{design:?}: results diverged between drivers");
        assert_eq!(
            recw, rect,
            "{design:?}: flight recording (command stream) diverged"
        );
    }
}

/// HNSW traversal, ET off (NdpBase) and on (NdpEtOpt, NdpEtDual).
#[test]
fn hnsw_pipeline_drivers_agree() {
    let wl = Workload::prepare(&SynthSpec::sift().scaled(700, 5), 10, Some(40));
    assert_drivers_agree(&wl, &[Design::NdpBase, Design::NdpEtOpt, Design::NdpEtDual]);
}

/// IVF traversal exercises centroid hops and a different offload shape.
#[test]
fn ivf_pipeline_drivers_agree() {
    let wl = Workload::prepare_with_index(
        &SynthSpec::gist().scaled(500, 4),
        10,
        Some(20),
        IndexKind::Ivf,
    );
    assert_drivers_agree(&wl, &[Design::NdpBase, Design::NdpEtOpt]);
}

/// The serving engine (wave model + fault recovery) sits on the same
/// batch driver; its full report must not depend on the driver either.
#[test]
fn serving_with_faults_drivers_agree() {
    let wl = Workload::prepare(&SynthSpec::sift().scaled(800, 4), 10, Some(40));
    let sys = SystemConfig::default();
    let serve =
        ServeConfig::open_loop(0xD0D0, 150_000.0, 48, 2_000_000).with_faults(FaultProfile {
            rates: FaultRates::mixed(),
            seed: 0xFA11,
            retry: RetryPolicy::default_ndp(),
        });
    let (rw, rt) = under_both_drivers(|| run_serve(&wl, &sys, &serve));
    assert_eq!(rw, rt, "serve report diverged between drivers");
    assert_eq!(rw.to_json(), rt.to_json());
}
