//! Slice sampling helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly-chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v: Vec<u8> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }
}
