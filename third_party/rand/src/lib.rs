//! Minimal, offline, API-compatible stand-in for the `rand` crate.
//!
//! Implements exactly the subset this workspace uses: a seeded
//! [`rngs::SmallRng`] (xoshiro256++), [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`] shuffling.
//! All call sites in the workspace seed explicitly via
//! [`SeedableRng::seed_from_u64`], so reproducibility is the contract;
//! statistical quality beyond xoshiro's is not required.

pub mod rngs;
pub mod seq;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring rand 0.8).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64());
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                // Rounding may land exactly on `end` for narrow ranges.
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i: u32 = rng.gen_range(0u32..=8);
            assert!(i <= 8);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn covers_full_u32_range_without_overflow() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let _: u32 = rng.gen_range(0u32..u32::MAX);
        }
    }
}
