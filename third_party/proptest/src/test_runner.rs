//! Deterministic case generation for the `proptest!` macro.

use std::fmt;

/// Cases per property. Override with `PROPTEST_CASES` (as real proptest
/// allows) when a quicker or deeper run is wanted.
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Failure of one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-case random source: xoshiro256++ seeded from a hash of the test
/// path and the case index, so each property replays identically.
#[derive(Debug, Clone)]
pub struct Gen {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Gen {
    /// Source for case `case` of the property named `path`.
    pub fn for_case(path: &str, case: u64) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut state = h ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Gen { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        self.next_u64() % bound
    }
}
