//! Value-generation strategies.

use crate::test_runner::Gen;

/// Generates values of `Value` (real proptest's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((gen.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((gen.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + (self.end as f64 - self.start as f64) * gen.unit_f64();
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// `Just`-style constant strategy (parity with real proptest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}
