//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::Gen;

/// A length specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing a `Vec` of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span <= 1 {
                0
            } else {
                gen.below(span) as usize
            };
        (0..len).map(|_| self.element.generate(gen)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
