//! Minimal, offline, API-compatible stand-in for `proptest`.
//!
//! Covers the subset this workspace uses: the [`proptest!`] macro over
//! functions whose arguments are drawn from range strategies or
//! [`collection::vec`], plus [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assert_ne!`]. Each property runs a fixed number of cases from
//! a deterministic per-test seed. There is no shrinking: a failing case
//! reports its case index and seed so it can be replayed by rerunning
//! the test.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Range strategies are implemented directly on `Range`/`RangeInclusive`,
/// so `0u32..256` and `-1.0f32..1.0` are strategies, as in real proptest.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut gen = $crate::test_runner::Gen::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut gen);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    left, right, format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    // `prop_assert*` and `proptest!` resolve at the crate root inside the
    // defining crate; downstream users go through `prelude::*`.
    proptest! {
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        fn vec_lengths_respected(v in crate::collection::vec(0u32..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        fn inclusive_ranges(x in 0u32..=4) {
            prop_assert!(x <= 4);
        }
    }

    proptest! {
        #[should_panic(expected = "failed at case")]
        fn failing_property_reports_case(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
