//! Minimal, offline, API-compatible stand-in for `criterion`.
//!
//! Provides the subset the workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Benches run a
//! small fixed warm-up plus measured iteration count and print mean
//! wall-clock time per iteration — enough to compare kernels locally
//! without the statistics machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identifier printed for parameterized benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function` benched at `parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Prevent the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean time per iteration of the last `iter` call.
    pub last_mean: Duration,
}

const WARMUP_ITERS: u32 = 3;
const MEASURE_ITERS: u32 = 10;

impl Bencher {
    /// Run `f` repeatedly, timing the measured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.last_mean = start.elapsed() / MEASURE_ITERS;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher::default();
        f(&mut b);
        println!("{}/{}: {:?}/iter", self.name, label, b.last_mean);
    }

    /// Bench a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Bench a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (parity with real criterion).
    pub fn finish(self) {}
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Bench a standalone closure.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        println!("{}: {:?}/iter", name, b.last_mean);
        self
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut b = Bencher::default();
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
        });
        assert!(b.last_mean <= Duration::from_secs(1));
        assert!(acc >= 13); // warmup + measured iterations ran
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("in", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
